package routing

import (
	"cmp"
	"fmt"
	"slices"
	"strings"

	"routesync/internal/netsim"
)

// Route is one routing-table entry.
type Route struct {
	Dest    netsim.NodeID
	Metric  uint32
	NextHop netsim.NodeID
	Via     netsim.Medium
	// Updated is the last time this route was installed or refreshed.
	Updated float64
	// Local marks the router's own address (metric 0, never expires).
	Local bool
}

// Table is a distance-vector routing table. All per-call state (the
// sorted view, apply/expire result lists, recycled Route structs) is
// retained scratch, so the steady-state update cycle — export, apply,
// expire — allocates nothing once the table has reached its high-water
// size.
type Table struct {
	routes   map[netsim.NodeID]*Route
	infinity uint32
	holdDown float64
	holdTill map[netsim.NodeID]float64

	// sorted caches the destination-ordered route list; inserts and
	// deletes invalidate it (metric/refresh changes keep the order).
	sorted   []*Route
	sortedOK bool
	// free recycles Route structs deleted by Expire or Reset.
	free []*Route
	// inst/unre back ApplyResult's slices; expU/expD back Expire's.
	inst, unre []netsim.NodeID
	expU, expD []netsim.NodeID
}

// NewTable creates a table with the given unreachable metric.
func NewTable(infinity uint32) *Table {
	return &Table{
		routes:   make(map[netsim.NodeID]*Route),
		infinity: infinity,
		holdTill: make(map[netsim.NodeID]float64),
	}
}

// SetHoldDown enables IGRP-style hold-down: after a destination becomes
// unreachable, better news from a different next hop is rejected for d
// seconds. Zero disables.
func (t *Table) SetHoldDown(d float64) {
	if d < 0 {
		panic("routing: negative hold-down")
	}
	t.holdDown = d
}

// HeldDown reports whether dest is inside its hold-down window at time
// now.
func (t *Table) HeldDown(dest netsim.NodeID, now float64) bool {
	return now < t.holdTill[dest]
}

func (t *Table) startHold(dest netsim.NodeID, now float64) {
	if t.holdDown > 0 {
		t.holdTill[dest] = now + t.holdDown
	}
}

// Infinity returns the unreachable metric.
func (t *Table) Infinity() uint32 { return t.infinity }

// Len returns the number of entries, including unreachable ones awaiting
// garbage collection.
func (t *Table) Len() int { return len(t.routes) }

// Get returns the route for dest, or nil.
func (t *Table) Get(dest netsim.NodeID) *Route { return t.routes[dest] }

// SetLocal installs the router's own address with metric 0.
func (t *Table) SetLocal(self netsim.NodeID, now float64) {
	if r, ok := t.routes[self]; ok {
		*r = Route{Dest: self, NextHop: self, Updated: now, Local: true}
		return
	}
	t.routes[self] = t.newRoute(Route{Dest: self, NextHop: self, Updated: now, Local: true})
	t.sortedOK = false
}

// newRoute returns a recycled (or fresh) Route holding r.
func (t *Table) newRoute(r Route) *Route {
	if k := len(t.free); k > 0 {
		p := t.free[k-1]
		t.free = t.free[:k-1]
		*p = r
		return p
	}
	p := new(Route)
	*p = r
	return p
}

func cmpRouteDest(a, b *Route) int { return cmp.Compare(a.Dest, b.Dest) }

// sortedRoutes returns the destination-ordered route list, rebuilding
// the cached view only after an insert or delete. Destinations are
// unique map keys, so the order is total and deterministic.
func (t *Table) sortedRoutes() []*Route {
	if !t.sortedOK {
		t.sorted = t.sorted[:0]
		for _, r := range t.routes {
			t.sorted = append(t.sorted, r)
		}
		slices.SortFunc(t.sorted, cmpRouteDest)
		t.sortedOK = true
	}
	return t.sorted
}

// Routes returns a copy of the entries sorted by destination for
// deterministic iteration (dumps, tests). Hot paths use ExportInto,
// which reads the cached sorted view without copying.
func (t *Table) Routes() []*Route {
	return append([]*Route(nil), t.sortedRoutes()...)
}

// Reset clears the table in place for a cold restart (router crash):
// all routes are recycled onto the free list and the hold-down windows
// cleared, while the map buckets, sorted view and scratch buffers keep
// their capacity for the next life. The configured infinity and
// hold-down are retained.
func (t *Table) Reset() {
	for dest, r := range t.routes {
		t.free = append(t.free, r)
		delete(t.routes, dest)
	}
	for dest := range t.holdTill {
		delete(t.holdTill, dest)
	}
	t.sorted = t.sorted[:0]
	t.sortedOK = false
}

// tableCkpt shadows a table's contents for optimistic rollback: route
// values and hold-down windows, flattened into reusable buffers.
type tableCkpt struct {
	routes []Route
	holds  []holdEntry
}

type holdEntry struct {
	dest netsim.NodeID
	till float64
}

// saveInto flattens the table into c, reusing c's buffers.
func (t *Table) saveInto(c *tableCkpt) {
	c.routes = c.routes[:0]
	for _, r := range t.routes {
		c.routes = append(c.routes, *r)
	}
	c.holds = c.holds[:0]
	for dest, till := range t.holdTill {
		c.holds = append(c.holds, holdEntry{dest, till})
	}
}

// restoreFrom rebuilds the table from c in place: current Route structs
// recycle onto the free list and the saved values repopulate through it,
// so a warm restore allocates nothing. The rebuilt map's iteration order
// differs from the original, which is unobservable — every consumer
// either sorts (Expire's result lists) or reads the destination-ordered
// cached view (ExportInto).
func (t *Table) restoreFrom(c *tableCkpt) {
	for dest, r := range t.routes {
		t.free = append(t.free, r)
		delete(t.routes, dest)
	}
	for i := range c.routes {
		t.routes[c.routes[i].Dest] = t.newRoute(c.routes[i])
	}
	for dest := range t.holdTill {
		delete(t.holdTill, dest)
	}
	for _, h := range c.holds {
		t.holdTill[h.dest] = h.till
	}
	t.sorted = t.sorted[:0]
	t.sortedOK = false
}

// Prewarm grows the table's Route pool (live + free) to at least n
// structs. Rollback restores and route churn pop the free list at their
// transient maxima; stocking it to the destination universe up front
// keeps the steady state allocation-free instead of letting the pool's
// high-water mark creep one struct at a time.
func (t *Table) Prewarm(n int) {
	for have := len(t.routes) + len(t.free); have < n; have++ {
		t.free = append(t.free, &Route{})
	}
}

// ApplyResult reports what an incoming update changed.
//
// Installed and Unreachable are backed by scratch the table reuses: they
// are valid until the next Apply/ApplyCost call on the same table, which
// is the lifetime every caller needs (agents react to the result before
// processing the next update).
type ApplyResult struct {
	// Changed is true if any route was added, improved, or re-costed.
	Changed bool
	// Worsened is true if any route's metric increased (including to
	// infinity) — the trigger condition for a triggered update.
	Worsened bool
	// Installed lists destinations whose forwarding entry must be
	// (re)programmed into the node FIB.
	Installed []netsim.NodeID
	// Unreachable lists destinations that just became unreachable.
	Unreachable []netsim.NodeID
}

// Apply folds one neighbor's update into the table (Bellman–Ford with the
// "believe your next hop" rule): the advertised metric plus one hop,
// capped at infinity. from is the advertising neighbor, via the medium
// the update arrived on, now the current time.
func (t *Table) Apply(m Message, via netsim.Medium, now float64) ApplyResult {
	return t.ApplyCost(m, via, now, 1)
}

// ApplyCost is Apply with an explicit ingress link cost — the metric
// charged for the hop to the advertising neighbor. Hop-count protocols
// (RIP) use cost 1; delay- or bandwidth-weighted protocols (Hello, IGRP's
// composite metric in spirit) supply larger costs for slower media. Cost
// must be at least 1 (a zero-cost hop would allow counting loops that
// never age).
func (t *Table) ApplyCost(m Message, via netsim.Medium, now float64, cost uint32) ApplyResult {
	if cost < 1 {
		panic("routing: link cost must be at least 1")
	}
	var res ApplyResult
	res.Installed = t.inst[:0]
	res.Unreachable = t.unre[:0]
	from := m.Router

	// The neighbor itself is reachable at one hop — distance-vector
	// protocols learn adjacency from the updates themselves.
	t.applyOne(Entry{Dest: from, Metric: 0}, from, via, now, cost, &res)

	for _, e := range m.Entries {
		if e.Dest == from {
			continue // the neighbor's self-route was handled above
		}
		t.applyOne(e, from, via, now, cost, &res)
	}
	// Keep the (possibly grown) backing arrays for the next call.
	t.inst = res.Installed
	t.unre = res.Unreachable
	return res
}

func (t *Table) applyOne(e Entry, from netsim.NodeID, via netsim.Medium, now float64, cost uint32, res *ApplyResult) {
	cand := e.Metric + cost
	if cand > t.infinity || cand < e.Metric { // cap, guard overflow
		cand = t.infinity
	}
	cur, ok := t.routes[e.Dest]
	switch {
	case ok && cur.Local:
		// never replace our own address
		return
	case !ok:
		if cand >= t.infinity {
			return // don't learn unreachable routes
		}
		if t.HeldDown(e.Dest, now) {
			return // hold-down: distrust resurrection rumors
		}
		t.routes[e.Dest] = t.newRoute(Route{Dest: e.Dest, Metric: cand, NextHop: from, Via: via, Updated: now})
		t.sortedOK = false
		res.Changed = true
		res.Installed = append(res.Installed, e.Dest)
	case cur.NextHop == from:
		// Updates from the current next hop are always believed — this
		// is how bad news propagates. Repeated unreachable
		// advertisements do not refresh the entry, so garbage
		// collection can reclaim dead routes (RFC 1058 §3.6 deletion
		// semantics).
		if cand < t.infinity {
			cur.Updated = now
		}
		cur.Via = via
		if cand != cur.Metric {
			if cand > cur.Metric {
				res.Worsened = true
			}
			cur.Metric = cand
			res.Changed = true
			if cand >= t.infinity {
				t.startHold(e.Dest, now)
				res.Unreachable = append(res.Unreachable, e.Dest)
			} else {
				res.Installed = append(res.Installed, e.Dest)
			}
		}
	case cand < cur.Metric:
		if t.HeldDown(e.Dest, now) && cur.Metric >= t.infinity {
			// hold-down: an unreachable destination stays down until
			// the hold expires, whatever other neighbors claim
			return
		}
		cur.Metric = cand
		cur.NextHop = from
		cur.Via = via
		cur.Updated = now
		res.Changed = true
		res.Installed = append(res.Installed, e.Dest)
	}
}

// Expire ages routes: entries unrefreshed for longer than timeout are
// marked unreachable; unreachable entries older than gcAfter are deleted.
// It returns the destinations that just became unreachable (for triggered
// updates) and those deleted. Like ApplyResult's slices, both returned
// lists are scratch-backed and valid until the next Expire call.
func (t *Table) Expire(now, timeout, gcAfter float64) (newlyUnreachable, deleted []netsim.NodeID) {
	newlyUnreachable = t.expU[:0]
	deleted = t.expD[:0]
	for dest, r := range t.routes {
		if r.Local {
			continue
		}
		age := now - r.Updated
		if r.Metric >= t.infinity {
			if age > gcAfter {
				delete(t.routes, dest)
				t.free = append(t.free, r)
				t.sortedOK = false
				deleted = append(deleted, dest)
			}
			continue
		}
		if age > timeout {
			r.Metric = t.infinity
			t.startHold(dest, now)
			newlyUnreachable = append(newlyUnreachable, dest)
		}
	}
	slices.Sort(newlyUnreachable)
	slices.Sort(deleted)
	t.expU = newlyUnreachable
	t.expD = deleted
	return newlyUnreachable, deleted
}

// String renders the table for diagnostics, one route per line, sorted
// by destination.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "routing table (%d routes, infinity %d)\n", len(t.routes), t.infinity)
	for _, r := range t.Routes() {
		flag := ""
		if r.Local {
			flag = " local"
		}
		metric := fmt.Sprintf("%d", r.Metric)
		if r.Metric >= t.infinity {
			metric = "unreachable"
		}
		fmt.Fprintf(&b, "  dest %-6d metric %-11s via %-6d updated %.2f%s\n",
			r.Dest, metric, r.NextHop, r.Updated, flag)
	}
	return b.String()
}

// Export builds the advertisement entries for an update sent on `on`,
// applying split horizon when enabled: routes learned over `on` are
// omitted, or — with poison reverse — advertised as unreachable. Local
// routes are advertised with metric 0.
func (t *Table) Export(on netsim.Medium, splitHorizon, poisonReverse bool) []Entry {
	return t.ExportInto(nil, on, splitHorizon, poisonReverse)
}

// ExportInto is Export appending onto dst — agents pass a per-agent
// scratch slice so steady-state update preparation allocates nothing.
func (t *Table) ExportInto(dst []Entry, on netsim.Medium, splitHorizon, poisonReverse bool) []Entry {
	for _, r := range t.sortedRoutes() {
		if splitHorizon && !r.Local && r.Via == on {
			if poisonReverse {
				dst = append(dst, Entry{Dest: r.Dest, Metric: t.infinity})
			}
			continue
		}
		dst = append(dst, Entry{Dest: r.Dest, Metric: r.Metric})
	}
	return dst
}
