package routing

import (
	"strings"
	"testing"

	"routesync/internal/netsim"
)

// fakeMedium is a stand-in Medium for table tests.
type fakeMedium struct{ name string }

func (f *fakeMedium) Transmit(*netsim.Packet, *netsim.Node, netsim.NodeID) {}

func TestTableLearnsNeighborFromUpdate(t *testing.T) {
	tb := NewTable(16)
	tb.SetLocal(0, 0)
	m := &fakeMedium{"lan"}
	res := tb.Apply(Message{Router: 1}, m, 10)
	if !res.Changed {
		t.Fatal("learning the neighbor should change the table")
	}
	r := tb.Get(1)
	if r == nil || r.Metric != 1 || r.NextHop != 1 {
		t.Fatalf("neighbor route = %+v", r)
	}
}

func TestTableBellmanFord(t *testing.T) {
	tb := NewTable(16)
	tb.SetLocal(0, 0)
	m := &fakeMedium{"lan"}
	// Neighbor 1 advertises dest 5 at metric 2 → we reach it at 3.
	res := tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 2}}}, m, 1)
	if r := tb.Get(5); r == nil || r.Metric != 3 || r.NextHop != 1 {
		t.Fatalf("route to 5 = %+v (res %+v)", tb.Get(5), res)
	}
	// Neighbor 2 advertises dest 5 at metric 1 → better path at 2.
	tb.Apply(Message{Router: 2, Entries: []Entry{{Dest: 5, Metric: 1}}}, m, 2)
	if r := tb.Get(5); r.Metric != 2 || r.NextHop != 2 {
		t.Fatalf("route to 5 after better offer = %+v", r)
	}
	// Neighbor 1 advertises metric 9: worse, from a non-next-hop → ignored.
	tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 9}}}, m, 3)
	if r := tb.Get(5); r.Metric != 2 || r.NextHop != 2 {
		t.Fatalf("worse offer from non-next-hop adopted: %+v", r)
	}
}

func TestTableBelievesNextHopBadNews(t *testing.T) {
	tb := NewTable(16)
	tb.SetLocal(0, 0)
	m := &fakeMedium{"lan"}
	tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 1}}}, m, 1)
	// Current next hop raises the metric: must be believed.
	res := tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 7}}}, m, 2)
	if !res.Worsened {
		t.Fatal("metric increase from next hop not reported as worsened")
	}
	if r := tb.Get(5); r.Metric != 8 {
		t.Fatalf("route metric = %d, want 8", r.Metric)
	}
	// Next hop declares it unreachable.
	res = tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 16}}}, m, 3)
	if len(res.Unreachable) != 1 || res.Unreachable[0] != 5 {
		t.Fatalf("unreachable = %v", res.Unreachable)
	}
	if r := tb.Get(5); r.Metric != 16 {
		t.Fatalf("metric = %d, want infinity", r.Metric)
	}
}

func TestTableMetricCapsAtInfinity(t *testing.T) {
	tb := NewTable(16)
	m := &fakeMedium{"lan"}
	tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 1}}}, m, 1)
	tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 40}}}, m, 2)
	if r := tb.Get(5); r.Metric != 16 {
		t.Fatalf("metric = %d, want capped at 16", r.Metric)
	}
}

func TestTableIgnoresUnreachableNews(t *testing.T) {
	tb := NewTable(16)
	m := &fakeMedium{"lan"}
	res := tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 16}}}, m, 1)
	if tb.Get(5) != nil {
		t.Fatal("learned an unreachable route")
	}
	if len(res.Installed) != 1 || res.Installed[0] != 1 {
		t.Fatalf("installed = %v, want just the neighbor", res.Installed)
	}
}

func TestTableNeverReplacesLocal(t *testing.T) {
	tb := NewTable(16)
	tb.SetLocal(0, 0)
	m := &fakeMedium{"lan"}
	tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 0, Metric: 0}}}, m, 1)
	r := tb.Get(0)
	if !r.Local || r.Metric != 0 {
		t.Fatalf("local route overwritten: %+v", r)
	}
}

func TestTableExpireLifecycle(t *testing.T) {
	tb := NewTable(16)
	tb.SetLocal(0, 0)
	m := &fakeMedium{"lan"}
	tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 1}}}, m, 0)

	// Within timeout: nothing happens.
	un, del := tb.Expire(100, 180, 300)
	if len(un) != 0 || len(del) != 0 {
		t.Fatalf("premature expiry: %v %v", un, del)
	}
	// Past timeout: routes 1 and 5 become unreachable.
	un, del = tb.Expire(200, 180, 300)
	if len(un) != 2 || len(del) != 0 {
		t.Fatalf("timeout: un=%v del=%v", un, del)
	}
	if r := tb.Get(5); r.Metric != 16 {
		t.Fatalf("metric after timeout = %d", r.Metric)
	}
	// Local route unaffected.
	if r := tb.Get(0); r.Metric != 0 {
		t.Fatal("local route expired")
	}
	// Past GC: deleted.
	un, del = tb.Expire(600, 180, 300)
	if len(un) != 0 || len(del) != 2 {
		t.Fatalf("gc: un=%v del=%v", un, del)
	}
	if tb.Get(5) != nil {
		t.Fatal("route not garbage collected")
	}
	if tb.Len() != 1 {
		t.Fatalf("table len = %d, want 1 (local only)", tb.Len())
	}
}

func TestTableRefreshPreventsExpiry(t *testing.T) {
	tb := NewTable(16)
	m := &fakeMedium{"lan"}
	tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 1}}}, m, 0)
	tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 1}}}, m, 150)
	un, _ := tb.Expire(200, 180, 300)
	if len(un) != 0 {
		t.Fatalf("refreshed route expired: %v", un)
	}
}

func TestExportSplitHorizon(t *testing.T) {
	tb := NewTable(16)
	tb.SetLocal(0, 0)
	lan := &fakeMedium{"lan"}
	other := &fakeMedium{"other"}
	tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 1}}}, lan, 1)
	tb.Apply(Message{Router: 2, Entries: []Entry{{Dest: 9, Metric: 1}}}, other, 1)

	// With split horizon on the LAN: routes learned over the LAN (1, 5)
	// are suppressed; local and other-medium routes remain.
	got := tb.Export(lan, true, false)
	dests := map[netsim.NodeID]bool{}
	for _, e := range got {
		dests[e.Dest] = true
	}
	if dests[1] || dests[5] {
		t.Fatalf("split horizon leaked LAN routes: %v", got)
	}
	if !dests[0] || !dests[2] || !dests[9] {
		t.Fatalf("missing expected routes: %v", got)
	}

	// Without split horizon everything is advertised.
	if got := tb.Export(lan, false, false); len(got) != 5 {
		t.Fatalf("full export = %v", got)
	}
}

func TestRoutesSortedDeterministic(t *testing.T) {
	tb := NewTable(16)
	m := &fakeMedium{"lan"}
	tb.Apply(Message{Router: 9, Entries: []Entry{{Dest: 3, Metric: 1}, {Dest: 1, Metric: 1}}}, m, 0)
	rs := tb.Routes()
	for i := 1; i < len(rs); i++ {
		if rs[i-1].Dest >= rs[i].Dest {
			t.Fatalf("routes not sorted: %v then %v", rs[i-1].Dest, rs[i].Dest)
		}
	}
}

func TestTableString(t *testing.T) {
	tb := NewTable(16)
	tb.SetLocal(0, 0)
	m := &fakeMedium{"lan"}
	tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 1}, {Dest: 7, Metric: 16}}}, m, 3)
	out := tb.String()
	for _, want := range []string{"3 routes", "local", "dest 5", "metric 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table dump missing %q:\n%s", want, out)
		}
	}
	// Unreachable entries render as words, not sentinel numbers... dest 7
	// was advertised at infinity and never learned, so only 3 routes.
	if strings.Contains(out, "dest 7") {
		t.Fatalf("unreachable advertisement learned:\n%s", out)
	}
}
