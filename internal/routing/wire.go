// Package routing implements a family of periodic distance-vector routing
// protocols over the netsim substrate: full-table updates broadcast at
// (jittered) periodic intervals, triggered updates on topology change,
// split horizon, route timeout and garbage collection — the protocol
// machinery behind RIP, IGRP, DECnet DNA Phase IV, EGP and Hello, the
// protocols the paper's §3 Periodic Messages model abstracts.
//
// The agents exhibit the paper's coupling mechanism for real: a router
// resets its routing timer only after its CPU finishes preparing its own
// update and processing any updates that arrived meanwhile, so routers on
// a shared network can fall into lock-step exactly as §4 simulates.
package routing

import (
	"encoding/binary"
	"errors"
	"fmt"

	"routesync/internal/netsim"
)

// Wire format constants.
const (
	magic     = 0x5253 // "RS"
	version   = 1
	headerLen = 12
	entryLen  = 8
	// flagTriggered marks an update sent in immediate response to a
	// topology change rather than a timer expiration.
	flagTriggered = 1 << 0
	// flagRequest marks a table request (RFC 1058 §3.4.1): a router that
	// just started asks its neighbors for their tables instead of
	// waiting up to a full period.
	flagRequest = 1 << 1
)

// MaxEntries bounds the routes in one update message (fits a uint16 count
// with sane packet sizes).
const MaxEntries = 4096

// Entry is one advertised route.
type Entry struct {
	Dest   netsim.NodeID
	Metric uint32
}

// Message is a full-table routing update or a table request.
type Message struct {
	Router    netsim.NodeID // originating router
	Triggered bool
	// Request asks the receiver for its full table; Entries is empty.
	Request bool
	Entries []Entry
}

// Errors returned by Decode.
var (
	ErrTruncated  = errors.New("routing: truncated message")
	ErrBadMagic   = errors.New("routing: bad magic")
	ErrBadVersion = errors.New("routing: unsupported version")
	ErrTooMany    = errors.New("routing: too many entries")
)

// Encode serializes the message big-endian:
//
//	uint16 magic | uint8 version | uint8 flags | uint32 router |
//	uint16 count | uint16 reserved | count × (uint32 dest, uint32 metric)
func Encode(m Message) ([]byte, error) {
	return EncodeInto(nil, m)
}

// EncodeInto is Encode writing into dst's backing array (grown as
// needed) — agents pass a per-agent scratch buffer so steady-state
// update encoding allocates nothing. The returned slice aliases dst's
// array when it was large enough; callers that keep the bytes past the
// next encode must copy (netsim.Packet.SetPayload does).
func EncodeInto(dst []byte, m Message) ([]byte, error) {
	if len(m.Entries) > MaxEntries {
		return nil, fmt.Errorf("%w: %d", ErrTooMany, len(m.Entries))
	}
	n := headerLen + entryLen*len(m.Entries)
	if cap(dst) < n {
		dst = make([]byte, n)
	} else {
		dst = dst[:n]
	}
	binary.BigEndian.PutUint16(dst[0:], magic)
	dst[2] = version
	dst[3] = 0
	if m.Triggered {
		dst[3] |= flagTriggered
	}
	if m.Request {
		dst[3] |= flagRequest
	}
	binary.BigEndian.PutUint32(dst[4:], uint32(m.Router))
	binary.BigEndian.PutUint16(dst[8:], uint16(len(m.Entries)))
	binary.BigEndian.PutUint16(dst[10:], 0) // reserved
	for i, e := range m.Entries {
		off := headerLen + entryLen*i
		binary.BigEndian.PutUint32(dst[off:], uint32(e.Dest))
		binary.BigEndian.PutUint32(dst[off+4:], e.Metric)
	}
	return dst, nil
}

// PeekHeader validates buf with exactly Decode's checks and returns the
// header fields without materializing the entry slice — the agents'
// allocation-free receive path. count is the number of entries present.
func PeekHeader(buf []byte) (router netsim.NodeID, triggered, request bool, count int, err error) {
	if len(buf) < headerLen {
		return 0, false, false, 0, ErrTruncated
	}
	if binary.BigEndian.Uint16(buf[0:]) != magic {
		return 0, false, false, 0, ErrBadMagic
	}
	if buf[2] != version {
		return 0, false, false, 0, fmt.Errorf("%w: %d", ErrBadVersion, buf[2])
	}
	count = int(binary.BigEndian.Uint16(buf[8:]))
	if len(buf) < headerLen+entryLen*count {
		return 0, false, false, 0, ErrTruncated
	}
	triggered = buf[3]&flagTriggered != 0
	request = buf[3]&flagRequest != 0
	router = netsim.NodeID(binary.BigEndian.Uint32(buf[4:]))
	return router, triggered, request, count, nil
}

// AppendEntries decodes buf's entries onto dst and returns it. buf must
// have passed PeekHeader; with a reused dst the decode is
// allocation-free once the scratch reaches its high-water size.
func AppendEntries(dst []Entry, buf []byte) []Entry {
	count := int(binary.BigEndian.Uint16(buf[8:]))
	for i := 0; i < count; i++ {
		off := headerLen + entryLen*i
		dst = append(dst, Entry{
			Dest:   netsim.NodeID(binary.BigEndian.Uint32(buf[off:])),
			Metric: binary.BigEndian.Uint32(buf[off+4:]),
		})
	}
	return dst
}

// Decode parses a wire message, validating magic, version and length.
func Decode(buf []byte) (Message, error) {
	var m Message
	if len(buf) < headerLen {
		return m, ErrTruncated
	}
	if binary.BigEndian.Uint16(buf[0:]) != magic {
		return m, ErrBadMagic
	}
	if buf[2] != version {
		return m, fmt.Errorf("%w: %d", ErrBadVersion, buf[2])
	}
	m.Triggered = buf[3]&flagTriggered != 0
	m.Request = buf[3]&flagRequest != 0
	m.Router = netsim.NodeID(binary.BigEndian.Uint32(buf[4:]))
	count := int(binary.BigEndian.Uint16(buf[8:]))
	if len(buf) < headerLen+entryLen*count {
		return m, ErrTruncated
	}
	m.Entries = make([]Entry, count)
	for i := range m.Entries {
		off := headerLen + entryLen*i
		m.Entries[i] = Entry{
			Dest:   netsim.NodeID(binary.BigEndian.Uint32(buf[off:])),
			Metric: binary.BigEndian.Uint32(buf[off+4:]),
		}
	}
	return m, nil
}

// WireSize returns the encoded byte length for n entries (used to size
// packets without encoding twice).
func WireSize(n int) int { return headerLen + entryLen*n }
