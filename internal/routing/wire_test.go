package routing

import (
	"errors"
	"testing"
	"testing/quick"

	"routesync/internal/netsim"
	"routesync/internal/rng"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := Message{
		Router:    7,
		Triggered: true,
		Entries: []Entry{
			{Dest: 1, Metric: 0},
			{Dest: 2, Metric: 5},
			{Dest: 3, Metric: 16},
		},
	}
	buf, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != WireSize(3) {
		t.Fatalf("encoded %d bytes, want %d", len(buf), WireSize(3))
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Router != m.Router || got.Triggered != m.Triggered || len(got.Entries) != 3 {
		t.Fatalf("round trip = %+v", got)
	}
	for i := range m.Entries {
		if got.Entries[i] != m.Entries[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got.Entries[i], m.Entries[i])
		}
	}
}

func TestEncodeEmptyMessage(t *testing.T) {
	buf, err := Encode(Message{Router: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Router != 1 || got.Triggered || len(got.Entries) != 0 {
		t.Fatalf("empty message round trip = %+v", got)
	}
}

func TestEncodeTooManyEntries(t *testing.T) {
	m := Message{Entries: make([]Entry, MaxEntries+1)}
	if _, err := Encode(m); !errors.Is(err, ErrTooMany) {
		t.Fatalf("err = %v, want ErrTooMany", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	good, _ := Encode(Message{Router: 1, Entries: []Entry{{Dest: 2, Metric: 3}}})

	short := good[:5]
	if _, err := Decode(short); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated header: err = %v", err)
	}

	truncBody := good[:len(good)-1]
	if _, err := Decode(truncBody); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated body: err = %v", err)
	}

	badMagic := append([]byte(nil), good...)
	badMagic[0] = 0xFF
	if _, err := Decode(badMagic); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: err = %v", err)
	}

	badVer := append([]byte(nil), good...)
	badVer[2] = 9
	if _, err := Decode(badVer); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: err = %v", err)
	}
}

// TestWireRoundTripProperty: arbitrary messages survive encode/decode.
func TestWireRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		m := Message{
			Router:    netsim.NodeID(r.Intn(1 << 20)),
			Triggered: r.Bernoulli(0.5),
		}
		n := r.Intn(100)
		for i := 0; i < n; i++ {
			m.Entries = append(m.Entries, Entry{
				Dest:   netsim.NodeID(r.Intn(1 << 20)),
				Metric: uint32(r.Intn(1 << 16)),
			})
		}
		buf, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		if got.Router != m.Router || got.Triggered != m.Triggered || len(got.Entries) != len(m.Entries) {
			return false
		}
		for i := range m.Entries {
			if got.Entries[i] != m.Entries[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		buf := make([]byte, r.Intn(200))
		for i := range buf {
			buf[i] = byte(r.Intn(256))
		}
		_, _ = Decode(buf) // must not panic
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{RIP(), IGRP(), DECnet(), EGP(), Hello()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	// Paper §3 periods
	if RIP().Period != 30 || IGRP().Period != 90 || DECnet().Period != 120 || EGP().Period != 180 {
		t.Fatal("profile periods disagree with the paper")
	}
	if RIP().Infinity != 16 {
		t.Fatal("RIP infinity must be 16")
	}
}

func TestProfileValidate(t *testing.T) {
	bad := []Profile{
		{Name: "p0", Period: 0, Infinity: 16, TimeoutFactor: 3, GCFactor: 6},
		{Name: "p1", Period: 30, Infinity: 1, TimeoutFactor: 3, GCFactor: 6},
		{Name: "p2", Period: 30, Infinity: 16, TimeoutFactor: 0, GCFactor: 6},
		{Name: "p3", Period: 30, Infinity: 16, TimeoutFactor: 6, GCFactor: 3},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("%s validated", p.Name)
		}
	}
}
