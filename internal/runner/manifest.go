package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// ManifestName is the provenance file a writing run maintains in OutDir.
const ManifestName = "MANIFEST.json"

// manifestVersion guards the schema; a reader that sees a newer version
// treats the manifest as absent rather than misinterpreting it.
const manifestVersion = 1

// Manifest records, per experiment, everything needed to (a) prove where
// an output file came from and (b) decide whether a re-run is necessary.
type Manifest struct {
	Version     int                       `json:"version"`
	Git         string                    `json:"git"`
	GoVersion   string                    `json:"go_version"`
	Experiments map[string]*ManifestEntry `json:"experiments"`
}

// ManifestEntry is one experiment's provenance record. ParamsHash and
// CodeVersion together form the skip key: if both match the pending run
// and every file below still has its recorded content hash, the
// experiment is up to date. The remaining fields let a skipped
// experiment still contribute its notes and counts to INDEX.md and
// TIMINGS.json without re-running.
type ManifestEntry struct {
	Title       string            `json:"title"`
	ParamsHash  string            `json:"params_hash"`
	CodeVersion string            `json:"code_version"`
	Seed        int64             `json:"seed"`
	Quick       bool              `json:"quick"`
	WallSeconds float64           `json:"wall_seconds"`
	Series      int               `json:"series"`
	Points      int               `json:"points"`
	Notes       []string          `json:"notes,omitempty"`
	Files       map[string]string `json:"files"` // name → sha256 of content
	Metrics     *MetricsSnapshot  `json:"metrics,omitempty"`
}

// LoadManifest reads dir's manifest. A missing, unreadable, malformed,
// or future-versioned manifest yields an empty one: the worst outcome is
// a redundant re-run, never a wrong skip.
func LoadManifest(dir string) *Manifest {
	m := &Manifest{Version: manifestVersion, Experiments: map[string]*ManifestEntry{}}
	buf, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return m
	}
	var disk Manifest
	if json.Unmarshal(buf, &disk) != nil || disk.Version != manifestVersion || disk.Experiments == nil {
		return m
	}
	return &disk
}

// Write stamps the environment fields and writes the manifest to dir.
// Map keys marshal sorted, so equal content is byte-identical.
func (m *Manifest) Write(dir string) error {
	m.Version = manifestVersion
	m.Git = GitDescribe()
	m.GoVersion = runtime.Version()
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, ManifestName), append(buf, '\n'), 0o644)
}

// UpToDate reports whether the entry covers a pending (paramsHash,
// codeVersion) run and all of its recorded files are intact in dir. An
// entry with no recorded files is never up to date — there is nothing to
// reuse.
func (e *ManifestEntry) UpToDate(dir, paramsHash, codeVersion string) bool {
	if e == nil || e.ParamsHash != paramsHash || e.CodeVersion != codeVersion {
		return false
	}
	if len(e.Files) == 0 {
		return false
	}
	for name, want := range e.Files {
		got, err := HashFile(filepath.Join(dir, name))
		if err != nil || got != want {
			return false
		}
	}
	return true
}

// ParamsHash fingerprints one experiment invocation: the experiment id,
// the quick/paper scale switch, the base seed, and the frontend's typed
// overrides. Jobs is deliberately excluded — worker count never changes
// output. Overrides that JSON-marshal cleanly hash their JSON; anything
// else falls back to its Go-syntax representation.
func ParamsHash(id string, quick bool, seed int64, overrides any) string {
	payload := struct {
		ID        string `json:"id"`
		Quick     bool   `json:"quick"`
		Seed      int64  `json:"seed"`
		Overrides any    `json:"overrides,omitempty"`
	}{id, quick, seed, overrides}
	buf, err := json.Marshal(payload)
	if err != nil {
		buf = []byte(fmt.Sprintf("%#v", payload))
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])[:16]
}

// HashFile returns the sha256 of the file's content, hex-encoded.
func HashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

var (
	codeVersionOnce sync.Once
	codeVersion     string
)

// CodeVersion fingerprints the running binary (sha256 of the executable,
// truncated). Two invocations of the same build agree; any rebuild —
// whatever changed — invalidates every cached experiment, which is the
// conservative side of the incremental contract. Falls back to the Go
// toolchain version if the executable can't be read.
func CodeVersion() string {
	codeVersionOnce.Do(func() {
		codeVersion = runtime.Version()
		exe, err := os.Executable()
		if err != nil {
			return
		}
		f, err := os.Open(exe)
		if err != nil {
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			return
		}
		codeVersion = hex.EncodeToString(h.Sum(nil))[:16]
	})
	return codeVersion
}

var (
	gitOnce     sync.Once
	gitDescribe string
)

// GitDescribe returns `git describe --always --dirty --tags` for the
// current directory, or "unknown" outside a work tree or without git.
// Recorded for provenance only; the skip decision rests on CodeVersion.
func GitDescribe() string {
	gitOnce.Do(func() {
		gitDescribe = "unknown"
		out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
		if err != nil {
			return
		}
		if s := strings.TrimSpace(string(out)); s != "" {
			gitDescribe = s
		}
	})
	return gitDescribe
}
