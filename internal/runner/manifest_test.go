package runner

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := LoadManifest(dir) // missing file → empty manifest
	if len(m.Experiments) != 0 {
		t.Fatalf("fresh manifest has %d experiments", len(m.Experiments))
	}
	m.Experiments["fig01"] = &ManifestEntry{
		Title:       "Ping clustering",
		ParamsHash:  "abc123",
		CodeVersion: "deadbeef",
		Seed:        7,
		Quick:       true,
		WallSeconds: 1.25,
		Series:      2,
		Points:      100,
		Notes:       []string{"a note"},
		Files:       map[string]string{"fig01.csv": "ff"},
		Metrics:     &MetricsSnapshot{EventsFired: 42, RoundsCompleted: 3},
	}
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}

	got := LoadManifest(dir)
	e := got.Experiments["fig01"]
	if e == nil {
		t.Fatal("entry lost in round trip")
	}
	if e.Title != "Ping clustering" || e.ParamsHash != "abc123" ||
		e.CodeVersion != "deadbeef" || e.Seed != 7 || !e.Quick ||
		e.WallSeconds != 1.25 || e.Series != 2 || e.Points != 100 ||
		len(e.Notes) != 1 || e.Files["fig01.csv"] != "ff" {
		t.Fatalf("round-tripped entry = %+v", e)
	}
	if e.Metrics == nil || e.Metrics.EventsFired != 42 || e.Metrics.RoundsCompleted != 3 {
		t.Fatalf("round-tripped metrics = %+v", e.Metrics)
	}
	if got.Git == "" || got.GoVersion == "" {
		t.Fatalf("Write should stamp git/go_version, got %q/%q", got.Git, got.GoVersion)
	}
}

func TestLoadManifestRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ManifestName)

	// Malformed JSON → empty manifest, not an error.
	os.WriteFile(path, []byte("{not json"), 0o644)
	if m := LoadManifest(dir); len(m.Experiments) != 0 {
		t.Fatal("malformed manifest should load as empty")
	}

	// A future schema version must be ignored, never misread.
	os.WriteFile(path, []byte(`{"version": 99, "experiments": {"x": {}}}`), 0o644)
	if m := LoadManifest(dir); len(m.Experiments) != 0 {
		t.Fatal("future-versioned manifest should load as empty")
	}
}

func TestUpToDate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig.csv")
	os.WriteFile(path, []byte("data\n"), 0o644)
	h, err := HashFile(path)
	if err != nil {
		t.Fatal(err)
	}

	entry := &ManifestEntry{
		ParamsHash:  "p1",
		CodeVersion: "c1",
		Files:       map[string]string{"fig.csv": h},
	}
	if !entry.UpToDate(dir, "p1", "c1") {
		t.Fatal("matching entry with intact file should be up to date")
	}
	if entry.UpToDate(dir, "p2", "c1") {
		t.Fatal("params mismatch must re-run")
	}
	if entry.UpToDate(dir, "p1", "c2") {
		t.Fatal("code-version mismatch must re-run")
	}
	var nilEntry *ManifestEntry
	if nilEntry.UpToDate(dir, "p1", "c1") {
		t.Fatal("nil entry must re-run")
	}
	if (&ManifestEntry{ParamsHash: "p1", CodeVersion: "c1"}).UpToDate(dir, "p1", "c1") {
		t.Fatal("entry with no files must re-run (nothing to reuse)")
	}

	// Tampered output invalidates the entry.
	os.WriteFile(path, []byte("tampered\n"), 0o644)
	if entry.UpToDate(dir, "p1", "c1") {
		t.Fatal("changed file content must re-run")
	}
	os.Remove(path)
	if entry.UpToDate(dir, "p1", "c1") {
		t.Fatal("deleted file must re-run")
	}
}

func TestParamsHash(t *testing.T) {
	base := ParamsHash("fig01", false, 1, nil)
	if len(base) != 16 || strings.Trim(base, "0123456789abcdef") != "" {
		t.Fatalf("hash %q is not 16 hex chars", base)
	}
	if ParamsHash("fig01", false, 1, nil) != base {
		t.Fatal("equal inputs must hash equally")
	}
	for name, h := range map[string]string{
		"id":        ParamsHash("fig02", false, 1, nil),
		"quick":     ParamsHash("fig01", true, 1, nil),
		"seed":      ParamsHash("fig01", false, 2, nil),
		"overrides": ParamsHash("fig01", false, 1, map[string]int{"n": 20}),
	} {
		if h == base {
			t.Errorf("changing %s did not change the hash", name)
		}
	}

	// Unmarshalable overrides (funcs) fall back to %#v rather than
	// collapsing to one shared hash.
	f1 := ParamsHash("fig01", false, 1, struct{ F func() }{})
	if f1 == base {
		t.Error("func-bearing overrides should still perturb the hash")
	}
}

func TestCodeVersionStable(t *testing.T) {
	a, b := CodeVersion(), CodeVersion()
	if a == "" || a != b {
		t.Fatalf("CodeVersion() = %q then %q; want stable non-empty", a, b)
	}
}
