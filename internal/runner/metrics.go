package runner

import (
	"fmt"
	"sync/atomic"

	"routesync/internal/des"
)

// Metrics accumulates engine observer notifications for one experiment
// run. It implements both des.Observer and periodic.Observer (des.Time is
// a float64 alias, so plain float64 signatures satisfy both interfaces).
// All methods are lock-free atomic updates: the simulation thread pays a
// few nanoseconds per event and zero allocations, and the runner's
// progress goroutine may read concurrently.
type Metrics struct {
	scheduled atomic.Uint64
	fired     atomic.Uint64
	cancelled atomic.Uint64
	rounds    atomic.Uint64
	maxDepth  atomic.Int64
}

// EventScheduled implements des.Observer.
func (m *Metrics) EventScheduled(at float64, depth int) {
	m.scheduled.Add(1)
	m.bumpDepth(int64(depth))
}

// EventFired implements des.Observer.
func (m *Metrics) EventFired(at float64, depth int) {
	m.fired.Add(1)
}

// EventCancelled implements des.Observer.
func (m *Metrics) EventCancelled(at float64, depth int) {
	m.cancelled.Add(1)
}

// RoundCompleted implements periodic.Observer.
func (m *Metrics) RoundCompleted(now float64, size int) {
	m.rounds.Add(1)
}

// bumpDepth is a CAS max: concurrent engines (replications on the job
// runner) may observe into one Metrics.
func (m *Metrics) bumpDepth(d int64) {
	for {
		cur := m.maxDepth.Load()
		if d <= cur || m.maxDepth.CompareAndSwap(cur, d) {
			return
		}
	}
}

// MetricsSnapshot is the manifest's per-experiment metrics block.
type MetricsSnapshot struct {
	EventsScheduled uint64 `json:"events_scheduled,omitempty"`
	EventsFired     uint64 `json:"events_fired,omitempty"`
	EventsCancelled uint64 `json:"events_cancelled,omitempty"`
	// EventQueuePeakDepth is the deepest the DES event queue got across
	// every engine this experiment ran, whichever queue backend held it.
	EventQueuePeakDepth int64  `json:"event_queue_peak_depth,omitempty"`
	RoundsCompleted     uint64 `json:"rounds_completed,omitempty"`
	// DESBackend records which event-queue backend the run's DES kernels
	// used (heap or calendar), so a manifest diff can attribute a timing
	// shift to a backend switch. Empty when the experiment scheduled no
	// DES events.
	DESBackend string `json:"des_backend,omitempty"`
}

// Snapshot returns the current counts, or nil if nothing was observed —
// experiments whose engines aren't instrumented get no metrics block
// rather than a block of zeros.
func (m *Metrics) Snapshot() *MetricsSnapshot {
	if m == nil {
		return nil
	}
	s := &MetricsSnapshot{
		EventsScheduled:     m.scheduled.Load(),
		EventsFired:         m.fired.Load(),
		EventsCancelled:     m.cancelled.Load(),
		EventQueuePeakDepth: m.maxDepth.Load(),
		RoundsCompleted:     m.rounds.Load(),
	}
	if *s == (MetricsSnapshot{}) {
		return nil
	}
	if s.EventsScheduled > 0 {
		s.DESBackend = des.DefaultBackend().String()
	}
	return s
}

// progress renders a short live-status fragment for the runner's
// progress lines, or "" when nothing has been observed yet.
func (m *Metrics) progress() string {
	rounds := m.rounds.Load()
	fired := m.fired.Load()
	switch {
	case rounds > 0 && fired > 0:
		return fmt.Sprintf("%d rounds, %d events", rounds, fired)
	case rounds > 0:
		return fmt.Sprintf("%d rounds", rounds)
	case fired > 0:
		return fmt.Sprintf("%d events", fired)
	default:
		return ""
	}
}
