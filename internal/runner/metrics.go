package runner

import (
	"fmt"
	"math"
	"sync/atomic"

	"routesync/internal/des"
)

// Metrics accumulates engine observer notifications for one experiment
// run. It implements both des.Observer and periodic.Observer (des.Time is
// a float64 alias, so plain float64 signatures satisfy both interfaces).
// All methods are lock-free atomic updates: the simulation thread pays a
// few nanoseconds per event and zero allocations, and the runner's
// progress goroutine may read concurrently.
type Metrics struct {
	scheduled atomic.Uint64
	fired     atomic.Uint64
	cancelled atomic.Uint64
	rounds    atomic.Uint64
	maxDepth  atomic.Int64

	// Partition-coordination counters, fed by netsim.SyncObserver
	// callbacks (one per window/round, from the coordinator only).
	// The float maxima are stored as math.Float64bits so the CAS max
	// works on non-negative values.
	syncWindows   atomic.Uint64
	syncRollbacks atomic.Uint64
	rollbackDepth atomic.Uint64
	gvtLag        atomic.Uint64
}

// EventScheduled implements des.Observer.
func (m *Metrics) EventScheduled(at float64, depth int) {
	m.scheduled.Add(1)
	m.bumpDepth(int64(depth))
}

// EventFired implements des.Observer.
func (m *Metrics) EventFired(at float64, depth int) {
	m.fired.Add(1)
}

// EventCancelled implements des.Observer.
func (m *Metrics) EventCancelled(at float64, depth int) {
	m.cancelled.Add(1)
}

// RoundCompleted implements periodic.Observer.
func (m *Metrics) RoundCompleted(now float64, size int) {
	m.rounds.Add(1)
}

// SyncWindow implements netsim.SyncObserver: one call per coordination
// round of a partitioned run. Conservative windows carry zero lag and
// rollbacks; optimistic rounds report the commit frontier's lag and any
// rollback work the round paid for.
func (m *Metrics) SyncWindow(gvt, lag float64, rollbacks int, maxDepth float64) {
	m.syncWindows.Add(1)
	if rollbacks > 0 {
		m.syncRollbacks.Add(uint64(rollbacks))
	}
	bumpFloat(&m.rollbackDepth, maxDepth)
	bumpFloat(&m.gvtLag, lag)
}

// bumpFloat is a CAS max over non-negative float64 values stored as
// bits (for non-negative IEEE-754 values, bit order is value order).
func bumpFloat(a *atomic.Uint64, v float64) {
	if v <= 0 {
		return
	}
	bits := math.Float64bits(v)
	for {
		cur := a.Load()
		if bits <= cur || a.CompareAndSwap(cur, bits) {
			return
		}
	}
}

// bumpDepth is a CAS max: concurrent engines (replications on the job
// runner) may observe into one Metrics.
func (m *Metrics) bumpDepth(d int64) {
	for {
		cur := m.maxDepth.Load()
		if d <= cur || m.maxDepth.CompareAndSwap(cur, d) {
			return
		}
	}
}

// MetricsSnapshot is the manifest's per-experiment metrics block.
type MetricsSnapshot struct {
	EventsScheduled uint64 `json:"events_scheduled,omitempty"`
	EventsFired     uint64 `json:"events_fired,omitempty"`
	EventsCancelled uint64 `json:"events_cancelled,omitempty"`
	// EventQueuePeakDepth is the deepest the DES event queue got across
	// every engine this experiment ran, whichever queue backend held it.
	EventQueuePeakDepth int64  `json:"event_queue_peak_depth,omitempty"`
	RoundsCompleted     uint64 `json:"rounds_completed,omitempty"`
	// DESBackend records which event-queue backend the run's DES kernels
	// used (heap or calendar), so a manifest diff can attribute a timing
	// shift to a backend switch. Empty when the experiment scheduled no
	// DES events.
	DESBackend string `json:"des_backend,omitempty"`
	// SyncWindows counts partition coordination rounds (conservative
	// windows or optimistic commit rounds); SyncRollbacks the LP
	// rollbacks paid across them. RollbackDepthMax and GVTLagMax are the
	// deepest single rollback and the furthest any LP clock ran past a
	// commit frontier, in simulated seconds — the realized bounded-
	// rollback envelope for the run.
	SyncWindows      uint64  `json:"sync_windows,omitempty"`
	SyncRollbacks    uint64  `json:"sync_rollbacks,omitempty"`
	RollbackDepthMax float64 `json:"rollback_depth_max,omitempty"`
	GVTLagMax        float64 `json:"gvt_lag_max,omitempty"`
}

// Snapshot returns the current counts, or nil if nothing was observed —
// experiments whose engines aren't instrumented get no metrics block
// rather than a block of zeros.
func (m *Metrics) Snapshot() *MetricsSnapshot {
	if m == nil {
		return nil
	}
	s := &MetricsSnapshot{
		EventsScheduled:     m.scheduled.Load(),
		EventsFired:         m.fired.Load(),
		EventsCancelled:     m.cancelled.Load(),
		EventQueuePeakDepth: m.maxDepth.Load(),
		RoundsCompleted:     m.rounds.Load(),
		SyncWindows:         m.syncWindows.Load(),
		SyncRollbacks:       m.syncRollbacks.Load(),
		RollbackDepthMax:    math.Float64frombits(m.rollbackDepth.Load()),
		GVTLagMax:           math.Float64frombits(m.gvtLag.Load()),
	}
	if *s == (MetricsSnapshot{}) {
		return nil
	}
	if s.EventsScheduled > 0 {
		s.DESBackend = des.DefaultBackend().String()
	}
	return s
}

// progress renders a short live-status fragment for the runner's
// progress lines, or "" when nothing has been observed yet.
func (m *Metrics) progress() string {
	rounds := m.rounds.Load()
	fired := m.fired.Load()
	switch {
	case rounds > 0 && fired > 0:
		return fmt.Sprintf("%d rounds, %d events", rounds, fired)
	case rounds > 0:
		return fmt.Sprintf("%d rounds", rounds)
	case fired > 0:
		return fmt.Sprintf("%d events", fired)
	default:
		return ""
	}
}
