// Package runner is the experiment-management layer between the
// simulation engines and the command-line frontends: a registry of named
// experiments, a Spec→Artifacts run contract, MANIFEST.json provenance
// (params hash, code version, git describe, wall time, content hash of
// every emitted file), incremental re-runs that skip up-to-date
// experiments, and live progress wiring for the engine observer hooks in
// internal/des and internal/periodic.
//
// The layer absorbs what used to be private to cmd/figures — the driver
// table, -only selection, TIMINGS.json bookkeeping, and partial-run index
// protection — so every frontend (figures, syncsim, markovtool, netexp,
// scenarios) shares one implementation of -only/-jobs/-quick and
// deterministic seed-per-index semantics.
package runner

import (
	"fmt"
	"sort"
	"strings"
)

// CostClass is a coarse wall-time expectation for an experiment at paper
// scale, used for scheduling hints and registry listings.
type CostClass int

const (
	// CostCheap finishes in well under a second.
	CostCheap CostClass = iota
	// CostModerate takes on the order of a second.
	CostModerate
	// CostExpensive dominates a full regeneration (long sweeps).
	CostExpensive
)

// String returns the cost-class name.
func (c CostClass) String() string {
	switch c {
	case CostCheap:
		return "cheap"
	case CostModerate:
		return "moderate"
	case CostExpensive:
		return "expensive"
	default:
		return fmt.Sprintf("CostClass(%d)", int(c))
	}
}

// Experiment is one registered, runnable unit: a figure driver, an
// analysis table, or a scenario study.
type Experiment struct {
	// ID is the unique handle used by -only and manifest entries.
	ID string
	// Title is the human-readable name shown in listings and cached runs.
	Title string
	// Tags group experiments for frontend selection (e.g. "figures").
	Tags []string
	// Cost is the expected paper-scale wall time class.
	Cost CostClass
	// Run computes the experiment. It must be deterministic in the Spec:
	// equal Spec fields (ignoring Jobs) must reproduce identical artifacts.
	Run func(*Spec) (*Artifacts, error)
}

// tagged reports whether the experiment carries the tag.
func (e *Experiment) tagged(tag string) bool {
	for _, t := range e.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Registry holds experiments in registration order.
type Registry struct {
	byID  map[string]*Experiment
	order []*Experiment
}

// Default is the package-level registry that internal/experiments
// populates at init time and the cmd frontends select from.
var Default = NewRegistry()

// NewRegistry returns an empty registry (tests use fresh instances).
func NewRegistry() *Registry {
	return &Registry{byID: map[string]*Experiment{}}
}

// Register adds an experiment. It panics on an empty id, a nil Run, or a
// duplicate id — registration happens at init time, and a collision is a
// programming error that must fail loudly, not a runtime condition.
func (r *Registry) Register(e Experiment) {
	if e.ID == "" {
		panic("runner: Register with empty experiment id")
	}
	if e.Run == nil {
		panic(fmt.Sprintf("runner: Register(%q) with nil Run", e.ID))
	}
	if _, dup := r.byID[e.ID]; dup {
		panic(fmt.Sprintf("runner: duplicate experiment id %q", e.ID))
	}
	exp := e
	r.byID[e.ID] = &exp
	r.order = append(r.order, &exp)
}

// Lookup returns the experiment registered under id, or nil.
func (r *Registry) Lookup(id string) *Experiment {
	return r.byID[id]
}

// All returns every experiment in registration order.
func (r *Registry) All() []*Experiment {
	return append([]*Experiment(nil), r.order...)
}

// Tagged returns the experiments carrying tag, in registration order. An
// empty tag selects everything.
func (r *Registry) Tagged(tag string) []*Experiment {
	if tag == "" {
		return r.All()
	}
	var out []*Experiment
	for _, e := range r.order {
		if e.tagged(tag) {
			out = append(out, e)
		}
	}
	return out
}

// Select filters the tag's experiments by a comma-separated id list,
// preserving registration order. An empty list selects all of them.
// Unknown ids are an error, not a silent no-op: a typo like `-only fig4`
// must fail loudly instead of reporting success having run nothing.
func (r *Registry) Select(tag, only string) ([]*Experiment, error) {
	pool := r.Tagged(tag)
	if strings.TrimSpace(only) == "" {
		return pool, nil
	}
	want := map[string]bool{}
	for _, id := range strings.Split(only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	known := map[string]bool{}
	var active []*Experiment
	for _, e := range pool {
		known[e.ID] = true
		if want[e.ID] {
			active = append(active, e)
		}
	}
	var unknown []string
	for id := range want {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		ids := make([]string, len(pool))
		for i, e := range pool {
			ids[i] = e.ID
		}
		return nil, fmt.Errorf("unknown figure id(s): %s\nknown ids: %s",
			strings.Join(unknown, ", "), strings.Join(ids, ", "))
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("-only selected no figures")
	}
	return active, nil
}
