package runner

import (
	"strings"
	"testing"
)

func noopRun(*Spec) (*Artifacts, error) { return &Artifacts{}, nil }

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		if msg := r.(string); !strings.Contains(msg, want) {
			t.Fatalf("panic = %q, want substring %q", msg, want)
		}
	}()
	fn()
}

func TestRegisterCollisionPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Register(Experiment{ID: "a", Run: noopRun})
	mustPanic(t, `duplicate experiment id "a"`, func() {
		reg.Register(Experiment{ID: "a", Run: noopRun})
	})
}

func TestRegisterValidation(t *testing.T) {
	reg := NewRegistry()
	mustPanic(t, "empty experiment id", func() {
		reg.Register(Experiment{Run: noopRun})
	})
	mustPanic(t, "nil Run", func() {
		reg.Register(Experiment{ID: "b"})
	})
}

func TestLookupAndOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Register(Experiment{ID: "z", Run: noopRun, Tags: []string{"fig"}})
	reg.Register(Experiment{ID: "a", Run: noopRun, Tags: []string{"fig"}})
	reg.Register(Experiment{ID: "m", Run: noopRun, Tags: []string{"tool"}})

	if got := reg.Lookup("a"); got == nil || got.ID != "a" {
		t.Fatalf("Lookup(a) = %v", got)
	}
	if got := reg.Lookup("missing"); got != nil {
		t.Fatalf("Lookup(missing) = %v, want nil", got)
	}

	// All and Tagged preserve registration order, not lexical order.
	ids := func(es []*Experiment) string {
		var out []string
		for _, e := range es {
			out = append(out, e.ID)
		}
		return strings.Join(out, ",")
	}
	if got := ids(reg.All()); got != "z,a,m" {
		t.Fatalf("All order = %s, want z,a,m", got)
	}
	if got := ids(reg.Tagged("fig")); got != "z,a" {
		t.Fatalf("Tagged(fig) = %s, want z,a", got)
	}
	if got := ids(reg.Tagged("")); got != "z,a,m" {
		t.Fatalf("Tagged(\"\") = %s, want z,a,m", got)
	}
}

func TestSelect(t *testing.T) {
	reg := NewRegistry()
	for _, id := range []string{"fig01", "fig02", "fig03"} {
		reg.Register(Experiment{ID: id, Run: noopRun, Tags: []string{"figures"}})
	}
	reg.Register(Experiment{ID: "tool1", Run: noopRun, Tags: []string{"tools"}})

	// Empty -only selects the whole tag pool.
	all, err := reg.Select("figures", "")
	if err != nil || len(all) != 3 {
		t.Fatalf("Select(figures, \"\") = %d experiments, err %v", len(all), err)
	}

	// Subset selection keeps registration order regardless of list order.
	sub, err := reg.Select("figures", " fig03 ,fig01")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 || sub[0].ID != "fig01" || sub[1].ID != "fig03" {
		t.Fatalf("Select subset = %v", sub)
	}

	// Unknown ids fail loudly and name the known pool.
	_, err = reg.Select("figures", "fig01,fig99")
	if err == nil || !strings.Contains(err.Error(), "unknown figure id(s): fig99") {
		t.Fatalf("unknown id error = %v", err)
	}
	if !strings.Contains(err.Error(), "fig01, fig02, fig03") {
		t.Fatalf("error should list known ids, got %v", err)
	}

	// An id outside the tag pool is unknown within that pool.
	_, err = reg.Select("figures", "tool1")
	if err == nil || !strings.Contains(err.Error(), "unknown figure id(s): tool1") {
		t.Fatalf("cross-tag id error = %v", err)
	}
}

func TestCostClassString(t *testing.T) {
	for c, want := range map[CostClass]string{
		CostCheap:     "cheap",
		CostModerate:  "moderate",
		CostExpensive: "expensive",
		CostClass(9):  "CostClass(9)",
	} {
		if got := c.String(); got != want {
			t.Errorf("CostClass(%d).String() = %q, want %q", int(c), got, want)
		}
	}
}
