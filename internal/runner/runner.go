package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"routesync/internal/parallel"
)

// Artifacts is what one experiment run hands back to the runner:
// everything needed for the per-experiment stdout block, INDEX.md,
// TIMINGS.json, and the manifest entry.
type Artifacts struct {
	// Title is the human-readable name (falls back to Experiment.Title).
	Title string
	// Notes are the headline findings printed under the experiment and
	// recorded in INDEX.md and the manifest.
	Notes []string
	// Series and Points count the emitted data for TIMINGS.json.
	Series int
	Points int
	// Files lists the names (relative to Spec.OutDir) this run wrote;
	// empty when Spec.Write was off.
	Files []string
	// ASCII is the full human-readable report for tool frontends that
	// print to stdout instead of writing files.
	ASCII string
}

// DriverTiming is one entry of TIMINGS.json (schema unchanged from when
// cmd/figures owned it).
type DriverTiming struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
	Series  int     `json:"series"`
	Points  int     `json:"points"`
}

// TimingsFile is the TIMINGS.json schema: enough to track pipeline
// speedups across PRs the way the BENCH_*.json trajectories do.
type TimingsFile struct {
	Quick        bool           `json:"quick"`
	Jobs         int            `json:"jobs"`
	Workers      int            `json:"workers"`
	TotalSeconds float64        `json:"total_seconds"`
	Drivers      []DriverTiming `json:"drivers"`
}

// Options parameterize one runner invocation.
type Options struct {
	// Registry to select from; nil means Default.
	Registry *Registry
	// Tag restricts the candidate pool (e.g. "figures"); "" means all.
	Tag string
	// Only is the comma-separated -only id filter within the pool;
	// unknown ids are an error. Ignored when IDs is set.
	Only string
	// IDs selects exactly these experiments in the given order (tool
	// frontends); unknown ids are an error.
	IDs []string
	// OutDir receives emitted files, INDEX.md, TIMINGS.json, and
	// MANIFEST.json when Write is set.
	OutDir string
	// Quick, Jobs, Seed, and Overrides flow into each experiment's Spec.
	Quick     bool
	Jobs      int
	Seed      int64
	Overrides any
	// Write turns on file emission plus the index/timings/manifest
	// bookkeeping. Tool frontends leave it off and print Artifacts.ASCII.
	Write bool
	// Force disables the incremental skip: every selected experiment
	// re-runs even if its manifest entry is up to date.
	Force bool
	// Stdout, when non-nil, receives the per-experiment progress blocks
	// (`== id (title, 123ms)` plus notes) in registration order.
	Stdout io.Writer
	// Errout receives per-experiment failures as they are observed; nil
	// means os.Stderr. The run continues past failures (matching the old
	// cmd/figures behavior) but reports them in Run's error.
	Errout io.Writer
	// Progress, when non-nil, receives live one-line status updates for
	// in-flight experiments (engine observer counts). Intended for a
	// terminal's stderr; keep it off when stderr is redirected.
	Progress io.Writer
	// ProgressEvery overrides the progress line interval (default 1s).
	ProgressEvery time.Duration
}

// Summary reports what one invocation did.
type Summary struct {
	// Experiments holds the selected experiments in emission order.
	Experiments []*Experiment
	// Artifacts holds each experiment's artifacts, parallel to
	// Experiments. Cached experiments get artifacts reconstructed from
	// the manifest (Notes/Series/Points/Files; no ASCII).
	Artifacts []*Artifacts
	// Cached counts experiments skipped as up to date.
	Cached int
	// Failed counts experiments whose Run returned an error.
	Failed int
	// Partial reports whether the selection was a subset of the pool (a
	// partial run never rewrites INDEX.md or TIMINGS.json).
	Partial bool
	// Total is the invocation's wall time; Workers the worker bound.
	Total   time.Duration
	Workers int
}

// expRun is what one worker hands back to the in-order consumer.
type expRun struct {
	art     *Artifacts
	entry   *ManifestEntry
	err     error
	cached  bool
	seconds float64
}

// Run executes the selected experiments on at most Jobs workers, in
// registration order for selection and emission, with per-experiment
// incremental skipping against OutDir's manifest when Write is set.
//
// Output files, stdout blocks, and INDEX.md are byte-identical for any
// Jobs value; a full non-quick run additionally rewrites TIMINGS.json
// and the manifest. Returns the summary and an error if any experiment
// failed or the bookkeeping writes failed.
func Run(opts Options) (*Summary, error) {
	reg := opts.Registry
	if reg == nil {
		reg = Default
	}
	errout := opts.Errout
	if errout == nil {
		errout = os.Stderr
	}

	pool := reg.Tagged(opts.Tag)
	var active []*Experiment
	if len(opts.IDs) > 0 {
		for _, id := range opts.IDs {
			e := reg.Lookup(id)
			if e == nil {
				return nil, unknownIDs(pool, opts.IDs)
			}
			active = append(active, e)
		}
	} else {
		var err error
		active, err = reg.Select(opts.Tag, opts.Only)
		if err != nil {
			return nil, err
		}
	}

	sum := &Summary{
		Experiments: active,
		Partial:     len(active) != len(pool),
		Workers:     resolvedWorkers(opts.Jobs, len(active)),
	}

	// The manifest loaded here is read-only for the duration of the run:
	// workers consult it for skip decisions while the consumer
	// accumulates fresh entries separately, then the two are merged.
	var manifest *Manifest
	if opts.Write {
		if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
			return sum, err
		}
		manifest = LoadManifest(opts.OutDir)
	}
	codeVersion := CodeVersion()

	shared := newSharedCache()
	inflight := newProgressBoard(opts, active)
	defer inflight.stop()

	var index strings.Builder
	index.WriteString("# Regenerated figures\n\n")
	var perDriver []DriverTiming
	updates := map[string]*ManifestEntry{}

	t0 := time.Now()
	parallel.RunOrdered(len(active), opts.Jobs, func(i int) expRun {
		e := active[i]
		paramsHash := ParamsHash(e.ID, opts.Quick, opts.Seed, opts.Overrides)
		if opts.Write && !opts.Force {
			if old := manifest.Experiments[e.ID]; old.UpToDate(opts.OutDir, paramsHash, codeVersion) {
				return expRun{art: old.artifacts(), entry: old, cached: true}
			}
		}
		spec := &Spec{
			ID:        e.ID,
			Quick:     opts.Quick,
			Seed:      opts.Seed,
			Jobs:      opts.Jobs,
			OutDir:    opts.OutDir,
			Write:     opts.Write,
			Overrides: opts.Overrides,
			Metrics:   &Metrics{},
			shared:    shared,
		}
		inflight.start(e.ID, spec.Metrics)
		start := time.Now()
		art, err := e.Run(spec)
		seconds := time.Since(start).Seconds()
		inflight.finish(e.ID)
		if err != nil {
			return expRun{err: fmt.Errorf("%s: %w", e.ID, err), seconds: seconds}
		}
		if art.Title == "" {
			art.Title = e.Title
		}
		run := expRun{art: art, seconds: seconds}
		if opts.Write {
			entry := &ManifestEntry{
				Title:       art.Title,
				ParamsHash:  paramsHash,
				CodeVersion: codeVersion,
				Seed:        opts.Seed,
				Quick:       opts.Quick,
				WallSeconds: seconds,
				Series:      art.Series,
				Points:      art.Points,
				Notes:       art.Notes,
				Files:       map[string]string{},
				Metrics:     spec.Metrics.Snapshot(),
			}
			for _, name := range art.Files {
				h, herr := HashFile(filepath.Join(opts.OutDir, name))
				if herr != nil {
					return expRun{err: fmt.Errorf("%s: %w", e.ID, herr), seconds: seconds}
				}
				entry.Files[name] = h
			}
			run.entry = entry
		}
		return run
	}, func(i int, run expRun) {
		e := active[i]
		if run.err != nil {
			fmt.Fprintln(errout, run.err)
			sum.Failed++
			sum.Artifacts = append(sum.Artifacts, nil)
			return
		}
		art := run.art
		sum.Artifacts = append(sum.Artifacts, art)
		seconds := run.seconds
		if run.cached {
			sum.Cached++
			seconds = run.entry.WallSeconds
			if opts.Stdout != nil {
				fmt.Fprintf(opts.Stdout, "== %s (%s, cached)\n", e.ID, art.Title)
			}
		} else if opts.Stdout != nil {
			fmt.Fprintf(opts.Stdout, "== %s (%s, %v)\n", e.ID, art.Title,
				time.Duration(run.seconds*float64(time.Second)).Round(time.Millisecond))
		}
		if opts.Stdout != nil {
			for _, n := range art.Notes {
				fmt.Fprintln(opts.Stdout, "   ", n)
			}
		}
		if run.entry != nil {
			updates[e.ID] = run.entry
		}
		perDriver = append(perDriver, DriverTiming{
			ID: e.ID, Title: art.Title, Seconds: seconds,
			Series: art.Series, Points: art.Points,
		})
		fmt.Fprintf(&index, "## %s — %s\n\n", e.ID, art.Title)
		for _, n := range art.Notes {
			fmt.Fprintf(&index, "- %s\n", n)
		}
		fmt.Fprintf(&index, "- files: [`%s.csv`](%s.csv), [`%s.txt`](%s.txt)\n\n", e.ID, e.ID, e.ID, e.ID)
	})
	sum.Total = time.Since(t0)
	inflight.stop()

	if sum.Failed > 0 {
		return sum, fmt.Errorf("%d of %d experiments failed", sum.Failed, len(active))
	}

	if opts.Write {
		// A partial -only run must not clobber the full-run index or the
		// full-run timing trajectory, but its manifest entries are still
		// merged in — that is what makes iterating on one figure cheap.
		if !sum.Partial {
			if err := os.WriteFile(filepath.Join(opts.OutDir, "INDEX.md"), []byte(index.String()), 0o644); err != nil {
				return sum, err
			}
			// Sorted by id so the file diffs cleanly across PRs even when
			// registration order changes.
			sort.Slice(perDriver, func(i, j int) bool { return perDriver[i].ID < perDriver[j].ID })
			tf := TimingsFile{
				Quick:        opts.Quick,
				Jobs:         opts.Jobs,
				Workers:      sum.Workers,
				TotalSeconds: sum.Total.Seconds(),
				Drivers:      perDriver,
			}
			if err := writeJSON(filepath.Join(opts.OutDir, "TIMINGS.json"), tf); err != nil {
				return sum, err
			}
		}
		for id, entry := range updates {
			manifest.Experiments[id] = entry
		}
		if err := manifest.Write(opts.OutDir); err != nil {
			return sum, err
		}
	}
	return sum, nil
}

// resolvedWorkers is the worker count the invocation actually runs with:
// the normalized -jobs request, clamped to the number of selected
// experiments — a -jobs 8 run of three experiments never has more than
// three workers busy, and that is the number Summary and TIMINGS.json
// should report.
func resolvedWorkers(jobs, experiments int) int {
	w := parallel.Workers(jobs)
	if experiments > 0 && w > experiments {
		w = experiments
	}
	return w
}

// artifacts reconstructs displayable artifacts from a manifest entry so
// a cached experiment still contributes to stdout, INDEX.md, and
// TIMINGS.json.
func (e *ManifestEntry) artifacts() *Artifacts {
	files := make([]string, 0, len(e.Files))
	for name := range e.Files {
		files = append(files, name)
	}
	sort.Strings(files)
	return &Artifacts{
		Title:  e.Title,
		Notes:  e.Notes,
		Series: e.Series,
		Points: e.Points,
		Files:  files,
	}
}

// unknownIDs builds the standard unknown-id error for an explicit IDs
// selection, mirroring Select's wording.
func unknownIDs(pool []*Experiment, ids []string) error {
	known := map[string]bool{}
	poolIDs := make([]string, len(pool))
	for i, e := range pool {
		known[e.ID] = true
		poolIDs[i] = e.ID
	}
	var unknown []string
	for _, id := range ids {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	sort.Strings(unknown)
	return fmt.Errorf("unknown figure id(s): %s\nknown ids: %s",
		strings.Join(unknown, ", "), strings.Join(poolIDs, ", "))
}

// progressBoard tracks in-flight experiments and, when enabled, prints a
// one-line status every interval from a background goroutine. All engine
// metric reads are atomic, so the goroutine never blocks a simulation.
type progressBoard struct {
	w        io.Writer
	interval time.Duration
	order    []string

	mu       sync.Mutex
	inflight map[string]*Metrics
	stopping chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

func newProgressBoard(opts Options, active []*Experiment) *progressBoard {
	b := &progressBoard{
		w:        opts.Progress,
		interval: opts.ProgressEvery,
		inflight: map[string]*Metrics{},
		stopping: make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, e := range active {
		b.order = append(b.order, e.ID)
	}
	if b.interval <= 0 {
		b.interval = time.Second
	}
	if b.w != nil {
		go b.loop()
	} else {
		close(b.done)
	}
	return b
}

func (b *progressBoard) start(id string, m *Metrics) {
	if b.w == nil {
		return
	}
	b.mu.Lock()
	b.inflight[id] = m
	b.mu.Unlock()
}

func (b *progressBoard) finish(id string) {
	if b.w == nil {
		return
	}
	b.mu.Lock()
	delete(b.inflight, id)
	b.mu.Unlock()
}

func (b *progressBoard) stop() {
	b.stopOnce.Do(func() { close(b.stopping) })
	<-b.done
}

func (b *progressBoard) loop() {
	defer close(b.done)
	tick := time.NewTicker(b.interval)
	defer tick.Stop()
	for {
		select {
		case <-b.stopping:
			return
		case <-tick.C:
			if line := b.render(); line != "" {
				fmt.Fprintln(b.w, line)
			}
		}
	}
}

// render lists in-flight experiments in registration order with their
// live observer counts.
func (b *progressBoard) render() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.inflight) == 0 {
		return ""
	}
	var parts []string
	for _, id := range b.order {
		m, ok := b.inflight[id]
		if !ok {
			continue
		}
		if p := m.progress(); p != "" {
			parts = append(parts, fmt.Sprintf("%s: %s", id, p))
		} else {
			parts = append(parts, fmt.Sprintf("%s: running", id))
		}
	}
	return "  … " + strings.Join(parts, " | ")
}

// writeJSON marshals v with two-space indentation and a trailing newline.
func writeJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
