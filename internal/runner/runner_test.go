package runner

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"routesync/internal/des"
	"routesync/internal/netsim"
)

// The metrics observer must satisfy the partition engine's sync hook so
// netsim.SetObserver wires it up automatically.
var _ netsim.SyncObserver = (*Metrics)(nil)

func TestMetricsSyncWindow(t *testing.T) {
	m := &Metrics{}
	m.SyncWindow(1.0, 0, 0, 0) // a conservative window: no rollback data
	m.SyncWindow(2.0, 0.25, 2, 0.125)
	m.SyncWindow(3.0, 0.1, 1, 0.5)
	s := m.Snapshot()
	if s == nil || s.SyncWindows != 3 || s.SyncRollbacks != 3 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.RollbackDepthMax != 0.5 {
		t.Fatalf("RollbackDepthMax = %v, want 0.5", s.RollbackDepthMax)
	}
	if s.GVTLagMax != 0.25 {
		t.Fatalf("GVTLagMax = %v, want 0.25", s.GVTLagMax)
	}
}

// countingRegistry builds a registry of n file-writing experiments and
// returns per-experiment run counters.
func countingRegistry(n int) (*Registry, []*atomic.Int64) {
	reg := NewRegistry()
	counts := make([]*atomic.Int64, n)
	for i := 0; i < n; i++ {
		i := i
		counts[i] = &atomic.Int64{}
		id := fmt.Sprintf("exp%02d", i)
		reg.Register(Experiment{
			ID:    id,
			Title: "experiment " + id,
			Tags:  []string{"test"},
			Run: func(spec *Spec) (*Artifacts, error) {
				counts[i].Add(1)
				art := &Artifacts{
					Notes:  []string{"note for " + spec.ID},
					Series: 1, Points: 10,
				}
				if spec.Write {
					name := spec.ID + ".csv"
					content := fmt.Sprintf("id=%s seed=%d quick=%v\n", spec.ID, spec.Seed, spec.Quick)
					if err := os.WriteFile(filepath.Join(spec.OutDir, name), []byte(content), 0o644); err != nil {
						return nil, err
					}
					art.Files = []string{name}
				}
				return art, nil
			},
		})
	}
	return reg, counts
}

func runCounts(counts []*atomic.Int64) []int64 {
	out := make([]int64, len(counts))
	for i, c := range counts {
		out[i] = c.Load()
	}
	return out
}

func TestRunIncrementalSkip(t *testing.T) {
	reg, counts := countingRegistry(3)
	dir := t.TempDir()
	opts := Options{Registry: reg, Tag: "test", OutDir: dir, Write: true, Seed: 1}

	// First run executes everything and records the manifest.
	sum, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cached != 0 || sum.Failed != 0 {
		t.Fatalf("first run: cached=%d failed=%d", sum.Cached, sum.Failed)
	}
	if got := runCounts(counts); got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("first run counts = %v", got)
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err != nil {
		t.Fatalf("manifest not written: %v", err)
	}

	// Second identical run skips everything.
	sum, err = Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cached != 3 {
		t.Fatalf("second run cached = %d, want 3", sum.Cached)
	}
	if got := runCounts(counts); got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("second run re-executed: counts = %v", got)
	}
	// Cached artifacts still carry notes/counts for the index.
	if a := sum.Artifacts[0]; a == nil || len(a.Notes) != 1 || a.Points != 10 {
		t.Fatalf("cached artifacts = %+v", a)
	}

	// Force re-runs despite an up-to-date manifest.
	forced := opts
	forced.Force = true
	if _, err := Run(forced); err != nil {
		t.Fatal(err)
	}
	if got := runCounts(counts); got[0] != 2 {
		t.Fatalf("forced run counts = %v", got)
	}

	// A seed change invalidates the params hash for every experiment.
	reseeded := opts
	reseeded.Seed = 99
	sum, err = Run(reseeded)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cached != 0 {
		t.Fatalf("seed change still cached %d", sum.Cached)
	}

	// Deleting one output re-runs exactly that experiment.
	os.Remove(filepath.Join(dir, "exp01.csv"))
	before := runCounts(counts)
	sum, err = Run(reseeded)
	if err != nil {
		t.Fatal(err)
	}
	after := runCounts(counts)
	if sum.Cached != 2 || after[1] != before[1]+1 || after[0] != before[0] || after[2] != before[2] {
		t.Fatalf("deleted-file run: cached=%d before=%v after=%v", sum.Cached, before, after)
	}

	// Corrupting an output likewise forces a re-run of just that one.
	os.WriteFile(filepath.Join(dir, "exp02.csv"), []byte("corrupted\n"), 0o644)
	before = after
	sum, err = Run(reseeded)
	if err != nil {
		t.Fatal(err)
	}
	after = runCounts(counts)
	if sum.Cached != 2 || after[2] != before[2]+1 {
		t.Fatalf("corrupted-file run: cached=%d before=%v after=%v", sum.Cached, before, after)
	}
}

func TestRunPartialProtectsIndexButMergesManifest(t *testing.T) {
	reg, _ := countingRegistry(3)
	dir := t.TempDir()
	opts := Options{Registry: reg, Tag: "test", OutDir: dir, Write: true}

	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
	index0, err := os.ReadFile(filepath.Join(dir, "INDEX.md"))
	if err != nil {
		t.Fatal(err)
	}
	timings0, err := os.ReadFile(filepath.Join(dir, "TIMINGS.json"))
	if err != nil {
		t.Fatal(err)
	}

	// A forced -only subset must not rewrite INDEX.md or TIMINGS.json...
	partial := opts
	partial.Only = "exp01"
	partial.Force = true
	sum, err := Run(partial)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Partial {
		t.Fatal("subset run not marked partial")
	}
	index1, _ := os.ReadFile(filepath.Join(dir, "INDEX.md"))
	timings1, _ := os.ReadFile(filepath.Join(dir, "TIMINGS.json"))
	if !bytes.Equal(index0, index1) {
		t.Fatal("partial run rewrote INDEX.md")
	}
	if !bytes.Equal(timings0, timings1) {
		t.Fatal("partial run rewrote TIMINGS.json")
	}

	// ...but its manifest entry is refreshed (wall time changes aside, the
	// entry must still exist and cover all three experiments).
	m := LoadManifest(dir)
	if len(m.Experiments) != 3 {
		t.Fatalf("manifest lost entries after partial run: %d", len(m.Experiments))
	}
}

func TestRunStdoutFormat(t *testing.T) {
	reg, _ := countingRegistry(2)
	dir := t.TempDir()
	var out bytes.Buffer
	opts := Options{Registry: reg, Tag: "test", OutDir: dir, Write: true, Stdout: &out}

	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
	first := out.String()
	if !strings.Contains(first, "== exp00 (experiment exp00, ") ||
		!strings.Contains(first, "    note for exp00\n") {
		t.Fatalf("run stdout = %q", first)
	}

	out.Reset()
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
	second := out.String()
	if !strings.Contains(second, "== exp00 (experiment exp00, cached)\n") ||
		!strings.Contains(second, "== exp01 (experiment exp01, cached)\n") {
		t.Fatalf("cached stdout = %q", second)
	}
}

func TestRunFailureSkipsBookkeeping(t *testing.T) {
	reg := NewRegistry()
	reg.Register(Experiment{
		ID: "ok", Tags: []string{"test"},
		Run: func(spec *Spec) (*Artifacts, error) {
			name := "ok.csv"
			os.WriteFile(filepath.Join(spec.OutDir, name), []byte("x\n"), 0o644)
			return &Artifacts{Files: []string{name}}, nil
		},
	})
	reg.Register(Experiment{
		ID: "boom", Tags: []string{"test"},
		Run: func(*Spec) (*Artifacts, error) {
			return nil, fmt.Errorf("synthetic failure")
		},
	})
	dir := t.TempDir()
	var errout bytes.Buffer
	sum, err := Run(Options{Registry: reg, Tag: "test", OutDir: dir, Write: true, Errout: &errout})
	if err == nil || !strings.Contains(err.Error(), "1 of 2 experiments failed") {
		t.Fatalf("err = %v", err)
	}
	if sum.Failed != 1 {
		t.Fatalf("Failed = %d", sum.Failed)
	}
	if !strings.Contains(errout.String(), "boom: synthetic failure") {
		t.Fatalf("errout = %q", errout.String())
	}
	// A failed run must not leave behind a manifest that would let the
	// next invocation skip the successful sibling of a broken batch.
	if _, statErr := os.Stat(filepath.Join(dir, ManifestName)); !os.IsNotExist(statErr) {
		t.Fatal("failed run wrote a manifest")
	}
	if _, statErr := os.Stat(filepath.Join(dir, "INDEX.md")); !os.IsNotExist(statErr) {
		t.Fatal("failed run wrote INDEX.md")
	}
}

func TestRunUnknownIDs(t *testing.T) {
	reg, _ := countingRegistry(2)
	_, err := Run(Options{Registry: reg, IDs: []string{"exp00", "nope"}})
	if err == nil || !strings.Contains(err.Error(), "unknown figure id(s): nope") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunSharedCachePerInvocation(t *testing.T) {
	var computes atomic.Int64
	reg := NewRegistry()
	for _, id := range []string{"a", "b"} {
		reg.Register(Experiment{
			ID: id, Tags: []string{"test"},
			Run: func(spec *Spec) (*Artifacts, error) {
				v := spec.Shared("expensive", func() any {
					computes.Add(1)
					return 42
				})
				if v.(int) != 42 {
					return nil, fmt.Errorf("shared value = %v", v)
				}
				return &Artifacts{}, nil
			},
		})
	}
	opts := Options{Registry: reg, Tag: "test"}
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 1 {
		t.Fatalf("first invocation computed %d times, want 1", computes.Load())
	}
	// A second invocation gets a fresh cache: no cross-run leakage.
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 2 {
		t.Fatalf("second invocation total computes = %d, want 2", computes.Load())
	}

	// A standalone Spec (no runner) just computes.
	spec := &Spec{}
	if v := spec.Shared("k", func() any { return "direct" }); v != "direct" {
		t.Fatalf("standalone Shared = %v", v)
	}
}

func TestRunDeterministicAcrossJobs(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		reg, _ := countingRegistry(4)
		dir := t.TempDir()
		var out bytes.Buffer
		if _, err := Run(Options{Registry: reg, Tag: "test", OutDir: dir, Write: true, Jobs: jobs, Stdout: &out}); err != nil {
			t.Fatal(err)
		}
		// Emission order is registration order regardless of worker count.
		var ids []string
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, "== ") {
				ids = append(ids, strings.Fields(line)[1])
			}
		}
		if got := strings.Join(ids, ","); got != "exp00,exp01,exp02,exp03" {
			t.Fatalf("jobs=%d emission order = %s", jobs, got)
		}
	}
}

func TestSpecObserversUntypedNil(t *testing.T) {
	spec := &Spec{} // Metrics off
	if spec.DESObserver() != nil {
		t.Fatal("DESObserver() with nil Metrics must be an untyped nil interface")
	}
	if spec.PeriodicObserver() != nil {
		t.Fatal("PeriodicObserver() with nil Metrics must be an untyped nil interface")
	}
	spec.Metrics = &Metrics{}
	if spec.DESObserver() == nil || spec.PeriodicObserver() == nil {
		t.Fatal("observers must be non-nil when Metrics is set")
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := &Metrics{}
	if m.Snapshot() != nil {
		t.Fatal("all-zero metrics must snapshot to nil")
	}
	m.EventScheduled(1.0, 5)
	m.EventScheduled(2.0, 3) // depth max stays 5
	m.EventFired(2.0, 2)
	m.EventCancelled(3.0, 1)
	m.RoundCompleted(4.0, 7)
	s := m.Snapshot()
	if s == nil || s.EventsScheduled != 2 || s.EventsFired != 1 ||
		s.EventsCancelled != 1 || s.EventQueuePeakDepth != 5 || s.RoundsCompleted != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.DESBackend != des.DefaultBackend().String() {
		t.Fatalf("DESBackend = %q, want %q", s.DESBackend, des.DefaultBackend().String())
	}
	if p := m.progress(); p != "1 rounds, 1 events" {
		t.Fatalf("progress = %q", p)
	}
	// An experiment that never touched the DES kernel records no backend.
	rounds := &Metrics{}
	rounds.RoundCompleted(1.0, 3)
	if s := rounds.Snapshot(); s == nil || s.DESBackend != "" {
		t.Fatalf("rounds-only snapshot = %+v, want empty DESBackend", s)
	}
}

func TestResolvedWorkers(t *testing.T) {
	cases := []struct {
		jobs, experiments, want int
	}{
		{jobs: 4, experiments: 33, want: 4},
		{jobs: 8, experiments: 3, want: 3}, // clamp: only 3 can be busy
		{jobs: 1, experiments: 10, want: 1},
		{jobs: 5, experiments: 0, want: 5}, // degenerate selection: keep the bound
	}
	for _, c := range cases {
		if got := resolvedWorkers(c.jobs, c.experiments); got != c.want {
			t.Errorf("resolvedWorkers(%d, %d) = %d, want %d", c.jobs, c.experiments, got, c.want)
		}
	}
}
