package runner

import (
	"sync"

	"routesync/internal/des"
	"routesync/internal/periodic"
)

// Spec carries everything an experiment Run function may depend on. Two
// Specs that differ only in Jobs (a scheduling knob) must produce
// identical artifacts; every other field participates in the params hash
// that drives incremental re-runs.
type Spec struct {
	// ID is the id of the experiment being run.
	ID string
	// Quick selects reduced horizons and replication counts.
	Quick bool
	// Seed is the base seed for experiments that take one (frontends with
	// a -seed flag). Figure drivers that bake their own seeds ignore it.
	Seed int64
	// Jobs bounds inner-replication parallelism (internal/parallel
	// semantics: 0 means one worker per CPU). Never affects output.
	Jobs int
	// OutDir is where WriteFiles-style artifacts land when Write is set.
	OutDir string
	// Write selects file emission; tool frontends run with Write off and
	// consume the Artifacts.ASCII text instead.
	Write bool
	// Overrides carries frontend-specific typed parameters (flag values).
	// Its concrete type is a contract between a frontend and the
	// experiments it invokes; nil means defaults.
	Overrides any
	// Metrics, when non-nil, accumulates engine observer counts for live
	// progress lines and the manifest metrics block.
	Metrics *Metrics

	shared *sharedCache
}

// DESObserver returns the Spec's metrics as a des.Observer, or an
// untyped nil when metrics are off. Always use this helper rather than
// assigning Spec.Metrics directly: a nil *Metrics stored in an interface
// is a non-nil interface, which would defeat the engines' nil check.
func (s *Spec) DESObserver() des.Observer {
	if s == nil || s.Metrics == nil {
		return nil
	}
	return s.Metrics
}

// PeriodicObserver returns the Spec's metrics as a periodic.Observer, or
// an untyped nil when metrics are off.
func (s *Spec) PeriodicObserver() periodic.Observer {
	if s == nil || s.Metrics == nil {
		return nil
	}
	return s.Metrics
}

// Shared memoizes compute under key for the duration of one runner.Run
// invocation: the first caller computes, concurrent and later callers
// get the same value. Figures 1 and 2 share one packet-level ping run
// this way, so `-only fig02` works without also running fig01, and two
// runner invocations in one process don't leak state into each other
// (unlike a package-level sync.Once).
func (s *Spec) Shared(key string, compute func() any) any {
	if s.shared == nil {
		// Standalone Spec (tests, direct experiment calls): no cross-
		// experiment sharing, just compute.
		return compute()
	}
	return s.shared.get(key, compute)
}

// sharedCache is a per-invocation key→value memo. Each key's compute
// runs exactly once even under concurrent access; the per-entry
// sync.Once keeps one slow compute from serializing unrelated keys.
type sharedCache struct {
	mu      sync.Mutex
	entries map[string]*sharedEntry
}

type sharedEntry struct {
	once sync.Once
	val  any
}

func newSharedCache() *sharedCache {
	return &sharedCache{entries: map[string]*sharedEntry{}}
}

func (c *sharedCache) get(key string, compute func() any) any {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &sharedEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val = compute() })
	return e.val
}
