// Package scenarios implements the paper's §1 catalogue of
// synchronization mechanisms beyond periodic routing messages: the
// client–server convoy (the Sprite file-server anecdote [Ba92]) and
// synchronization to an external clock (the DECnet/ftp traffic peaks
// [Pa93a]). Both run on the internal/des kernel and expose the same
// phase metrics as the routing model, demonstrating that the paper's
// clustering mathematics is not specific to routing.
package scenarios

import (
	"math"
	"sort"

	"routesync/internal/des"
	"routesync/internal/rng"
)

// ClientServerConfig parameterizes the Sprite-like polling scenario:
// N clients poll one server every Tp ± Tr seconds; the server serves
// requests FIFO at Tc seconds each; a client re-arms its poll timer only
// when its response arrives. Server queueing therefore couples the
// clients exactly the way routing-message processing couples routers.
type ClientServerConfig struct {
	N  int
	Tp float64
	Tr float64
	Tc float64
	// Seed drives all randomness.
	Seed int64
}

// Defaults fills zero fields with the Sprite numbers from the paper: 30 s
// polls; service cost chosen so a full convoy is visible.
func (c ClientServerConfig) Defaults() ClientServerConfig {
	if c.N == 0 {
		c.N = 20
	}
	if c.Tp == 0 {
		c.Tp = 30
	}
	if c.Tr == 0 {
		c.Tr = 0.05
	}
	if c.Tc == 0 {
		c.Tc = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ClientServer is a running instance. It is not safe for concurrent use.
type ClientServer struct {
	cfg ClientServerConfig
	sim *des.Simulator
	r   *rng.Source

	serverBusyUntil float64
	serverDownUntil float64
	pending         []int // client ids queued while the server is down

	// lastPoll[i] is the time client i last sent a request.
	lastPoll []float64
	// responses counts served requests.
	responses uint64
	// BusyRuns records, for each server busy period, how many requests
	// it served back to back — the convoy size distribution.
	busyRunStart float64
	busyRunCount int
	BusyRuns     []int
}

// NewClientServer builds and starts the scenario; client phases start
// uniformly spread over one period.
func NewClientServer(cfg ClientServerConfig) *ClientServer {
	cfg = cfg.Defaults()
	if cfg.N < 1 || cfg.Tp <= 0 || cfg.Tr < 0 || cfg.Tc < 0 {
		panic("scenarios: invalid client-server config")
	}
	cs := &ClientServer{
		cfg:      cfg,
		sim:      des.New(),
		r:        rng.New(cfg.Seed),
		lastPoll: make([]float64, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		i := i
		cs.sim.Schedule(cs.r.Uniform(0, cfg.Tp), "first-poll", func() { cs.poll(i) })
	}
	return cs
}

// Sim exposes the simulator for scheduling failures in tests/examples.
func (cs *ClientServer) Sim() *des.Simulator { return cs.sim }

// Responses returns the number of requests served.
func (cs *ClientServer) Responses() uint64 { return cs.responses }

// poll is client i's timer expiring: send a request to the server.
func (cs *ClientServer) poll(i int) {
	now := cs.sim.Now()
	cs.lastPoll[i] = now
	if now < cs.serverDownUntil {
		// The server is down: the request waits; Sprite-style recovery
		// serves the backlog at once when the server returns.
		cs.pending = append(cs.pending, i)
		return
	}
	cs.serve(i)
}

// serve enqueues client i's request at the server FIFO.
func (cs *ClientServer) serve(i int) {
	now := cs.sim.Now()
	start := math.Max(now, cs.serverBusyUntil)
	if start > cs.serverBusyUntil || cs.serverBusyUntil <= now {
		// A new busy run begins if the server was idle.
		if cs.busyRunCount > 0 && cs.serverBusyUntil <= now {
			cs.BusyRuns = append(cs.BusyRuns, cs.busyRunCount)
			cs.busyRunCount = 0
		}
		if cs.busyRunCount == 0 {
			cs.busyRunStart = start
		}
	}
	cs.busyRunCount++
	done := start + cs.cfg.Tc
	cs.serverBusyUntil = done
	cs.sim.Schedule(done, "response", func() { cs.respond(i) })
	cs.responses++
}

// respond delivers the response: the client re-arms its poll timer from
// *now* — the coupling that builds convoys.
func (cs *ClientServer) respond(i int) {
	delay := cs.r.Uniform(cs.cfg.Tp-cs.cfg.Tr, cs.cfg.Tp+cs.cfg.Tr)
	cs.sim.After(delay, "poll", func() { cs.poll(i) })
}

// FailServer takes the server down for the given duration starting now;
// requests arriving meanwhile are queued and served back to back at
// recovery — the Sprite recovery storm.
func (cs *ClientServer) FailServer(duration float64) {
	now := cs.sim.Now()
	cs.serverDownUntil = now + duration
	if cs.serverBusyUntil < cs.serverDownUntil {
		cs.serverBusyUntil = cs.serverDownUntil
	}
	cs.sim.Schedule(cs.serverDownUntil, "server-recovery", func() {
		backlog := cs.pending
		cs.pending = nil
		for _, i := range backlog {
			cs.serve(i)
		}
	})
}

// RunUntil advances the scenario.
func (cs *ClientServer) RunUntil(t float64) {
	cs.sim.RunUntil(t)
	// Flush a completed busy run so metrics are current.
	if cs.busyRunCount > 0 && cs.serverBusyUntil <= cs.sim.Now() {
		cs.BusyRuns = append(cs.BusyRuns, cs.busyRunCount)
		cs.busyRunCount = 0
	}
}

// LargestConvoy partitions the clients' last poll times with the same
// fixed-point busy-window rule as the routing model and returns the
// largest group — clients whose polls land inside one server busy run.
func (cs *ClientServer) LargestConvoy() int {
	polls := append([]float64(nil), cs.lastPoll...)
	sort.Float64s(polls)
	largest, k := 1, 1
	start := polls[0]
	for i := 1; i < len(polls); i++ {
		if polls[i] < start+float64(k)*cs.cfg.Tc {
			k++
			if k > largest {
				largest = k
			}
			continue
		}
		start, k = polls[i], 1
	}
	return largest
}

// OrderParameter is the Kuramoto coherence of the clients' poll phases
// over one nominal period.
func (cs *ClientServer) OrderParameter() float64 {
	window := cs.cfg.Tp + cs.cfg.Tc
	var re, im float64
	for _, t := range cs.lastPoll {
		phase := 2 * math.Pi * math.Mod(t, window) / window
		re += math.Cos(phase)
		im += math.Sin(phase)
	}
	return math.Hypot(re, im) / float64(cs.cfg.N)
}
