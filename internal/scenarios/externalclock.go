package scenarios

import (
	"math"

	"routesync/internal/rng"
	"routesync/internal/stats"
)

// ExternalClockConfig parameterizes the §1 external-clock scenario:
// independent processes that each fire "on the hour" (cron jobs, the
// hourly weather-map fetches of [Pa93b], DECnet's on-the-hour peaks of
// [Pa93a]). The processes never communicate, yet their traffic is
// perfectly synchronized because they share a wall clock.
type ExternalClockConfig struct {
	// Processes firing per clock boundary.
	Processes int
	// Interval between clock boundaries (3600 s for "hourly").
	Interval float64
	// StartNoise is the per-process fixed offset spread around the
	// boundary (cron jitter, clock skew), uniform in [0, StartNoise].
	StartNoise float64
	// Duration of the observation window.
	Duration float64
	Seed     int64
}

// Defaults fills zero fields with an hourly-cron picture.
func (c ExternalClockConfig) Defaults() ExternalClockConfig {
	if c.Processes == 0 {
		c.Processes = 50
	}
	if c.Interval == 0 {
		c.Interval = 3600
	}
	if c.StartNoise == 0 {
		c.StartNoise = 30
	}
	if c.Duration == 0 {
		c.Duration = 6 * c.Interval
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ExternalClockResult summarizes the aggregate arrival process.
type ExternalClockResult struct {
	// Arrivals is every event time in the window, sorted.
	Arrivals []float64
	// Histogram bins the arrivals over the window.
	Histogram *stats.Histogram
	// PeakToMean is the ratio of the fullest histogram bin to the mean
	// bin occupancy — 1.0 for uniform traffic, ≫1 for clock-synchronized
	// traffic.
	PeakToMean float64
}

// RunExternalClock simulates the scenario analytically (no event loop is
// needed: each process fires deterministically at boundary + its own
// offset) and bins the aggregate.
func RunExternalClock(cfg ExternalClockConfig) ExternalClockResult {
	cfg = cfg.Defaults()
	if cfg.Processes < 1 || cfg.Interval <= 0 || cfg.Duration <= 0 || cfg.StartNoise < 0 {
		panic("scenarios: invalid external-clock config")
	}
	r := rng.New(cfg.Seed)
	offsets := make([]float64, cfg.Processes)
	for i := range offsets {
		offsets[i] = r.Uniform(0, math.Max(cfg.StartNoise, 1e-9))
	}
	var arrivals []float64
	for b := 0.0; b < cfg.Duration; b += cfg.Interval {
		for _, off := range offsets {
			t := b + off
			if t < cfg.Duration {
				arrivals = append(arrivals, t)
			}
		}
	}
	bins := int(cfg.Duration / (cfg.Interval / 60)) // one bin per "minute"
	if bins < 10 {
		bins = 10
	}
	h := stats.NewHistogram(0, cfg.Duration, bins)
	for _, t := range arrivals {
		h.Add(t)
	}
	peak := 0
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	mean := float64(h.Total()) / float64(len(h.Counts))
	res := ExternalClockResult{Arrivals: arrivals, Histogram: h}
	if mean > 0 {
		res.PeakToMean = float64(peak) / mean
	}
	return res
}

// UniformBaseline runs the same offered load with arrival times uniform
// over the window — what the network architect's intuition expects from
// "independent" sources. Comparing PeakToMean against this baseline
// quantifies how wrong the intuition is.
func UniformBaseline(cfg ExternalClockConfig) ExternalClockResult {
	cfg = cfg.Defaults()
	r := rng.New(cfg.Seed + 9999)
	n := int(cfg.Duration/cfg.Interval) * cfg.Processes
	arrivals := make([]float64, n)
	for i := range arrivals {
		arrivals[i] = r.Uniform(0, cfg.Duration)
	}
	bins := int(cfg.Duration / (cfg.Interval / 60))
	if bins < 10 {
		bins = 10
	}
	h := stats.NewHistogram(0, cfg.Duration, bins)
	for _, t := range arrivals {
		h.Add(t)
	}
	peak := 0
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	mean := float64(h.Total()) / float64(len(h.Counts))
	res := ExternalClockResult{Arrivals: arrivals, Histogram: h}
	if mean > 0 {
		res.PeakToMean = float64(peak) / mean
	}
	return res
}
