package scenarios

import (
	"math"
	"testing"
)

func TestClientServerSteadyState(t *testing.T) {
	cs := NewClientServer(ClientServerConfig{N: 10, Tp: 30, Tr: 0.5, Tc: 0.05, Seed: 1})
	cs.RunUntil(600)
	// ~20 rounds × 10 clients of polls served.
	if cs.Responses() < 150 || cs.Responses() > 250 {
		t.Fatalf("responses = %d, want ~200", cs.Responses())
	}
}

// TestClientServerRecoveryConvoy is the [Ba92] Sprite anecdote: after a
// server outage, every client that polled during the outage is served
// back to back at recovery and their next polls land together — a convoy.
func TestClientServerRecoveryConvoy(t *testing.T) {
	cfg := ClientServerConfig{N: 20, Tp: 30, Tr: 0.05, Tc: 0.1, Seed: 2}
	cs := NewClientServer(cfg)
	cs.RunUntil(100)
	before := cs.LargestConvoy()

	// Take the server down for two full poll periods: every client polls
	// (exactly once — their timers stay un-armed until the response)
	// while it is down.
	cs.Sim().Schedule(100.5, "fail", func() { cs.FailServer(65) })
	cs.RunUntil(300)

	// The recovery serves the entire population in one back-to-back busy
	// run — the crispest convoy signal.
	maxRun := 0
	for _, n := range cs.BusyRuns {
		if n > maxRun {
			maxRun = n
		}
	}
	if maxRun < cfg.N {
		t.Fatalf("largest busy run = %d, want %d (the recovery storm)", maxRun, cfg.N)
	}
	// The clients' phases collapse: all 20 polls land within ~N·Tc = 2 s
	// of a 30-second period.
	if r := cs.OrderParameter(); r < 0.95 {
		t.Fatalf("order parameter after recovery storm = %v, want ~1", r)
	}
	// A substantial convoy persists rounds later (serialization spaces
	// polls by Tc each, so the strict busy-window partition reports a
	// core convoy rather than the full population).
	cs.RunUntil(600)
	after := cs.LargestConvoy()
	if after < cfg.N/3 {
		t.Fatalf("convoy after recovery = %d, want >= %d", after, cfg.N/3)
	}
	if after <= before/2 {
		t.Fatalf("convoy did not grow: before %d, after %d", before, after)
	}
}

// TestClientServerLargeJitterResists: with Tr = Tp/2, the recovery convoy
// disperses within a few polls.
func TestClientServerLargeJitterResists(t *testing.T) {
	cfg := ClientServerConfig{N: 20, Tp: 30, Tr: 15, Tc: 0.1, Seed: 3}
	cs := NewClientServer(cfg)
	cs.RunUntil(100)
	cs.Sim().Schedule(100.5, "fail", func() { cs.FailServer(65) })
	cs.RunUntil(300) // convoy forms at recovery...
	cs.RunUntil(900) // ...and should disperse within a few rounds
	if got := cs.LargestConvoy(); got > cfg.N/2 {
		t.Fatalf("convoy persisted despite Tr = Tp/2: %d", got)
	}
}

func TestClientServerBusyRuns(t *testing.T) {
	cs := NewClientServer(ClientServerConfig{N: 5, Tp: 30, Tr: 0.01, Tc: 0.1, Seed: 4})
	cs.RunUntil(400)
	if len(cs.BusyRuns) == 0 {
		t.Fatal("no busy runs recorded")
	}
	total := 0
	for _, n := range cs.BusyRuns {
		if n < 1 {
			t.Fatalf("busy run of %d", n)
		}
		total += n
	}
	if uint64(total) > cs.Responses() {
		t.Fatalf("busy runs (%d) exceed responses (%d)", total, cs.Responses())
	}
}

func TestClientServerInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	NewClientServer(ClientServerConfig{N: -1, Tp: 30, Tc: 0.1, Tr: 0.1, Seed: 1})
}

func TestExternalClockPeaks(t *testing.T) {
	cfg := ExternalClockConfig{Processes: 50, Interval: 3600, StartNoise: 30, Duration: 4 * 3600, Seed: 1}
	clocked := RunExternalClock(cfg)
	baseline := UniformBaseline(cfg)
	if clocked.PeakToMean < 10 {
		t.Fatalf("clock-synchronized peak/mean = %v, want ≫ 1", clocked.PeakToMean)
	}
	// The uniform baseline's peak/mean is a small-number statistic (a few
	// arrivals per bin); what matters is the gulf between the two.
	if clocked.PeakToMean < 4*baseline.PeakToMean {
		t.Fatalf("synchronized traffic (%v) should dwarf baseline (%v)",
			clocked.PeakToMean, baseline.PeakToMean)
	}
	// All arrivals inside the observation window.
	for _, a := range clocked.Arrivals {
		if a < 0 || a >= cfg.Duration {
			t.Fatalf("arrival %v outside window", a)
		}
	}
	// Arrival count: processes × boundaries.
	want := 50 * 4
	if len(clocked.Arrivals) != want {
		t.Fatalf("arrivals = %d, want %d", len(clocked.Arrivals), want)
	}
}

func TestExternalClockHistogramConservation(t *testing.T) {
	cfg := ExternalClockConfig{Seed: 7}
	res := RunExternalClock(cfg)
	if res.Histogram.Total() != len(res.Arrivals) {
		t.Fatalf("histogram total %d != arrivals %d", res.Histogram.Total(), len(res.Arrivals))
	}
}

func TestExternalClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	RunExternalClock(ExternalClockConfig{Processes: 1, Interval: -1, Duration: 10, StartNoise: 1, Seed: 1})
}

func TestOrderParameterRange(t *testing.T) {
	cs := NewClientServer(ClientServerConfig{})
	cs.RunUntil(500)
	r := cs.OrderParameter()
	if r < 0 || r > 1+1e-12 || math.IsNaN(r) {
		t.Fatalf("order parameter = %v", r)
	}
}
