package scenarios

import (
	"math"

	"routesync/internal/rng"
	"routesync/internal/stats"
)

// TCPSyncConfig parameterizes the §1 TCP example: "the synchronization of
// the window increase/decrease cycles of separate TCP connections sharing
// a common bottleneck gateway [ZhC190] ... can be avoided by adding
// randomization to the gateway's algorithm for choosing packets to drop
// during periods of congestion [FJ92]".
//
// The model is a round-based AIMD abstraction: each connection has a
// congestion window; every round (one RTT) each window grows by one; when
// the offered load Σw exceeds the bottleneck capacity, the gateway is
// congested and drops — with a drop-tail gateway every connection loses a
// packet and halves (the phase-locking event); with a randomized gateway
// each connection is cut independently with probability proportional to
// its share of the overload.
type TCPSyncConfig struct {
	// Flows sharing the bottleneck.
	Flows int
	// Capacity is the bottleneck's packets-per-round budget.
	Capacity int
	// RandomDrop selects the [FJ92] randomized gateway; false is
	// drop-tail.
	RandomDrop bool
	// Rounds to simulate.
	Rounds int
	Seed   int64
}

// Defaults fills zero fields.
func (c TCPSyncConfig) Defaults() TCPSyncConfig {
	if c.Flows == 0 {
		c.Flows = 10
	}
	if c.Capacity == 0 {
		c.Capacity = 100
	}
	if c.Rounds == 0 {
		c.Rounds = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TCPSyncResult summarizes a run.
type TCPSyncResult struct {
	// Windows[r][i] is flow i's window at round r (sampled every round).
	Windows [][]int
	// Utilization is the mean offered load over capacity (can exceed 1;
	// the excess is dropped).
	Utilization float64
	// SawtoothCorrelation is the mean pairwise Pearson correlation of
	// the flows' window series — near 1 when the cycles are phase-locked
	// (the drop-tail pathology), near 0 when independent.
	SawtoothCorrelation float64
	// CutsPerCongestion is the mean number of flows cut per congestion
	// event (Flows for lockstep drop-tail, ~1-2 for randomized).
	CutsPerCongestion float64
}

// RunTCPSync simulates the model.
func RunTCPSync(cfg TCPSyncConfig) TCPSyncResult {
	cfg = cfg.Defaults()
	if cfg.Flows < 2 || cfg.Capacity < cfg.Flows || cfg.Rounds < 10 {
		panic("scenarios: invalid tcp-sync config")
	}
	r := rng.New(cfg.Seed)
	w := make([]int, cfg.Flows)
	for i := range w {
		w[i] = 1 + r.Intn(cfg.Capacity/cfg.Flows) // staggered start
	}
	windows := make([][]int, 0, cfg.Rounds)
	var loadSum float64
	congestions, cuts := 0, 0
	for round := 0; round < cfg.Rounds; round++ {
		// additive increase
		total := 0
		for i := range w {
			w[i]++
			total += w[i]
		}
		loadSum += float64(total) / float64(cfg.Capacity)
		if total > cfg.Capacity {
			congestions++
			if cfg.RandomDrop {
				// randomized gateway: the overflow packets are chosen
				// uniformly from the aggregate, so each flow is cut
				// with probability ≈ overflow share; at least one cut.
				over := float64(total-cfg.Capacity) / float64(total)
				cut := false
				for i := range w {
					p := math.Min(1, over*float64(cfg.Flows)*float64(w[i])/float64(total))
					if r.Bernoulli(p) {
						w[i] = max1(w[i] / 2)
						cuts++
						cut = true
					}
				}
				if !cut {
					i := weightedPick(r, w, total)
					w[i] = max1(w[i] / 2)
					cuts++
				}
			} else {
				// drop-tail: the full queue drops from every
				// connection's burst — all flows lose and halve
				// together (the [ZhC190] global synchronization).
				for i := range w {
					w[i] = max1(w[i] / 2)
					cuts++
				}
			}
		}
		snap := make([]int, cfg.Flows)
		copy(snap, w)
		windows = append(windows, snap)
	}
	res := TCPSyncResult{
		Windows:     windows,
		Utilization: loadSum / float64(cfg.Rounds),
	}
	if congestions > 0 {
		res.CutsPerCongestion = float64(cuts) / float64(congestions)
	}
	res.SawtoothCorrelation = meanPairwiseCorrelation(windows)
	return res
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

func weightedPick(r *rng.Source, w []int, total int) int {
	t := r.Intn(total)
	for i, v := range w {
		t -= v
		if t < 0 {
			return i
		}
	}
	return len(w) - 1
}

// meanPairwiseCorrelation computes the average Pearson correlation over
// all flow pairs, discarding a 25% warm-up prefix.
func meanPairwiseCorrelation(windows [][]int) float64 {
	if len(windows) == 0 {
		return math.NaN()
	}
	start := len(windows) / 4
	flows := len(windows[0])
	series := make([][]float64, flows)
	for i := 0; i < flows; i++ {
		series[i] = make([]float64, 0, len(windows)-start)
		for r := start; r < len(windows); r++ {
			series[i] = append(series[i], float64(windows[r][i]))
		}
	}
	var sum float64
	pairs := 0
	for i := 0; i < flows; i++ {
		for j := i + 1; j < flows; j++ {
			c := pearson(series[i], series[j])
			if !math.IsNaN(c) {
				sum += c
				pairs++
			}
		}
	}
	if pairs == 0 {
		return math.NaN()
	}
	return sum / float64(pairs)
}

func pearson(a, b []float64) float64 {
	ma, mb := stats.Mean(a), stats.Mean(b)
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return math.NaN()
	}
	return num / math.Sqrt(da*db)
}
