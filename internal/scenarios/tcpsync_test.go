package scenarios

import (
	"math"
	"testing"
)

func TestTCPDropTailSynchronizes(t *testing.T) {
	res := RunTCPSync(TCPSyncConfig{Flows: 10, Capacity: 100, Rounds: 2000, Seed: 1})
	if res.SawtoothCorrelation < 0.8 {
		t.Fatalf("drop-tail correlation = %v, want ~1 (global synchronization)", res.SawtoothCorrelation)
	}
	if math.Abs(res.CutsPerCongestion-10) > 1e-9 {
		t.Fatalf("drop-tail cuts per congestion = %v, want all 10 flows", res.CutsPerCongestion)
	}
}

func TestTCPRandomDropDesynchronizes(t *testing.T) {
	res := RunTCPSync(TCPSyncConfig{Flows: 10, Capacity: 100, Rounds: 2000, RandomDrop: true, Seed: 1})
	if res.SawtoothCorrelation > 0.4 {
		t.Fatalf("random-drop correlation = %v, want low (decorrelated sawtooths)", res.SawtoothCorrelation)
	}
	if res.CutsPerCongestion > 6 {
		t.Fatalf("random-drop cuts per congestion = %v, want few", res.CutsPerCongestion)
	}
}

// TestTCPRandomDropImprovesUtilization: the headline operational benefit
// of desynchronizing the cycles — when all flows back off together the
// link drains empty; independent backoffs keep it fuller.
func TestTCPRandomDropImprovesUtilization(t *testing.T) {
	tail := RunTCPSync(TCPSyncConfig{Flows: 10, Capacity: 100, Rounds: 4000, Seed: 2})
	random := RunTCPSync(TCPSyncConfig{Flows: 10, Capacity: 100, Rounds: 4000, RandomDrop: true, Seed: 2})
	if random.Utilization <= tail.Utilization {
		t.Fatalf("random-drop utilization %v not above drop-tail %v",
			random.Utilization, tail.Utilization)
	}
}

func TestTCPWindowsAlwaysPositive(t *testing.T) {
	for _, rd := range []bool{false, true} {
		res := RunTCPSync(TCPSyncConfig{Flows: 5, Capacity: 50, Rounds: 1000, RandomDrop: rd, Seed: 3})
		for r, snap := range res.Windows {
			for i, w := range snap {
				if w < 1 {
					t.Fatalf("flow %d window %d at round %d", i, w, r)
				}
			}
		}
	}
}

func TestTCPSyncDeterministic(t *testing.T) {
	a := RunTCPSync(TCPSyncConfig{Seed: 7, RandomDrop: true})
	b := RunTCPSync(TCPSyncConfig{Seed: 7, RandomDrop: true})
	if a.SawtoothCorrelation != b.SawtoothCorrelation || a.Utilization != b.Utilization {
		t.Fatal("non-deterministic run")
	}
}

func TestTCPSyncPanics(t *testing.T) {
	for _, cfg := range []TCPSyncConfig{
		{Flows: 1, Capacity: 100, Rounds: 100, Seed: 1},
		{Flows: 10, Capacity: 5, Rounds: 100, Seed: 1},
		{Flows: 10, Capacity: 100, Rounds: 5, Seed: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid config did not panic")
				}
			}()
			RunTCPSync(cfg)
		}()
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if c := pearson(a, a); math.Abs(c-1) > 1e-12 {
		t.Fatalf("self correlation = %v", c)
	}
	b := []float64{4, 3, 2, 1}
	if c := pearson(a, b); math.Abs(c+1) > 1e-12 {
		t.Fatalf("anti correlation = %v", c)
	}
	flat := []float64{5, 5, 5, 5}
	if !math.IsNaN(pearson(a, flat)) {
		t.Fatal("correlation with constant series should be NaN")
	}
}
