// Package smoke exercises the five command-line frontends end to end:
// each test execs a freshly built binary and checks exit codes, stdout
// shape, and the incremental-manifest contract that the frontends share
// through internal/runner. These are the tests that would catch a flag
// wiring regression no unit test sees.
package smoke

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// binDir holds the five binaries TestMain builds.
var binDir string

var commands = []string{"figures", "syncsim", "markovtool", "netexp", "scenarios"}

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "smoke-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "smoke:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binDir = dir
	for _, name := range commands {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, name), "./cmd/"+name)
		cmd.Dir = "../.." // module root
		if out, err := cmd.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "smoke: build %s: %v\n%s", name, err, out)
			os.Exit(1)
		}
	}
	os.Exit(m.Run())
}

// run execs a built binary and returns stdout, stderr, and the exit code.
func run(t *testing.T, name string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v", name, args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

func TestFiguresQuickIncremental(t *testing.T) {
	out := t.TempDir()

	// A fresh quick run regenerates everything and writes the bookkeeping.
	stdout, stderr, code := run(t, "figures", "-out", out, "-quick")
	if code != 0 {
		t.Fatalf("figures exit %d\nstderr: %s", code, stderr)
	}
	// Derive the roster size from the run itself rather than hardcoding
	// it: a count here went stale (and was masked by test-result caching)
	// when a PR registered a new experiment. The floor only guards
	// against the registry collapsing.
	m := regexp.MustCompile(`wrote (\d+) figures`).FindStringSubmatch(stdout)
	if !strings.Contains(stdout, "== fig01 (") || m == nil {
		t.Fatalf("figures stdout = %q", stdout)
	}
	total, _ := strconv.Atoi(m[1])
	if total < 33 {
		t.Fatalf("only %d figures registered, expected at least 33", total)
	}
	if strings.Contains(stdout, "cached") {
		t.Fatal("fresh run claimed cached results")
	}
	for _, f := range []string{"INDEX.md", "TIMINGS.json", "MANIFEST.json", "fig04.csv", "fig04.txt"} {
		if _, err := os.Stat(filepath.Join(out, f)); err != nil {
			t.Errorf("missing %s after full run: %v", f, err)
		}
	}

	// The second identical invocation skips every experiment.
	stdout, stderr, code = run(t, "figures", "-out", out, "-quick")
	if code != 0 {
		t.Fatalf("second figures exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "== fig01 (") || !strings.Contains(stdout, fmt.Sprintf("%d cached", total)) {
		t.Fatalf("second run should cache all %d, stdout = %q", total, stdout)
	}

	// -force -only re-runs exactly the selection, leaving the index alone.
	index0, err := os.ReadFile(filepath.Join(out, "INDEX.md"))
	if err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code = run(t, "figures", "-out", out, "-quick", "-force", "-only", "fig04")
	if code != 0 {
		t.Fatalf("forced partial exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "== fig04 (") || strings.Contains(stdout, "cached") {
		t.Fatalf("forced partial stdout = %q", stdout)
	}
	index1, _ := os.ReadFile(filepath.Join(out, "INDEX.md"))
	if !bytes.Equal(index0, index1) {
		t.Fatal("partial run rewrote INDEX.md")
	}

	// Scale change (quick → paper) must invalidate the cache, not reuse it.
	stdout, _, code = run(t, "figures", "-out", out, "-quick=false", "-only", "fig04")
	if code != 0 || strings.Contains(stdout, "cached") {
		t.Fatalf("scale change reused cache: exit %d stdout = %q", code, stdout)
	}
}

func TestFiguresUnknownOnly(t *testing.T) {
	_, stderr, code := run(t, "figures", "-out", t.TempDir(), "-quick", "-only", "fig99")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "unknown figure id(s): fig99") || !strings.Contains(stderr, "known ids:") {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestSyncsimStartValidation(t *testing.T) {
	_, stderr, code := run(t, "syncsim", "-start", "synced")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, `unknown -start "synced" (allowed: unsync, sync)`) {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestSyncsimRun(t *testing.T) {
	stdout, stderr, code := run(t, "syncsim", "-n", "5", "-horizon", "1e4", "-analyze=false")
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "parameters: N=5") || !strings.Contains(stdout, "cluster events processed") {
		t.Fatalf("stdout = %q", stdout)
	}
}

func TestMarkovtoolSweepValidation(t *testing.T) {
	_, stderr, code := run(t, "markovtool", "-sweep", "bogus")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, `unknown sweep "bogus" (allowed: '', threshold, tr, n)`) {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestMarkovtoolTable(t *testing.T) {
	stdout, stderr, code := run(t, "markovtool")
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "Markov") && !strings.Contains(stdout, "f(") {
		t.Fatalf("stdout = %q", stdout)
	}
}

func TestNetexpScenarioValidation(t *testing.T) {
	_, stderr, code := run(t, "netexp", "-scenario", "video")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, `unknown scenario "video" (allowed: ping, audio)`) {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestNetexpPing(t *testing.T) {
	stdout, stderr, code := run(t, "netexp", "-scenario", "ping", "-pings", "40", "-routes", "50", "-plot=false")
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "ping") {
		t.Fatalf("stdout = %q", stdout)
	}
}

func TestScenariosWhichValidation(t *testing.T) {
	_, stderr, code := run(t, "scenarios", "-which", "nfs")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, `unknown -which "nfs" (allowed: tcp, clientserver, clock, all)`) {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestScenariosTCP(t *testing.T) {
	stdout, stderr, code := run(t, "scenarios", "-which", "tcp", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr)
	}
	if stdout == "" {
		t.Fatal("empty stdout")
	}
}
