package stats

import "math"

// Series is an (x, y) sequence — a figure's data in its rawest form. The
// experiments packages build Series values and internal/trace renders them.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s Series) Len() int { return len(s.X) }

// YRange returns the min and max of Y, ignoring NaN/±Inf points. It
// returns (NaN, NaN) when no finite points exist.
func (s Series) YRange() (lo, hi float64) {
	lo, hi = math.NaN(), math.NaN()
	for _, y := range s.Y {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			continue
		}
		if math.IsNaN(lo) || y < lo {
			lo = y
		}
		if math.IsNaN(hi) || y > hi {
			hi = y
		}
	}
	return lo, hi
}

// ClampY returns a copy of the series with every Y value above cap replaced
// by cap. The paper's Figure 12 y-axis tops out at 10^12 seconds; hitting
// times beyond that (including +Inf when growth is impossible) are plotted
// clamped the same way.
func (s Series) ClampY(cap float64) Series {
	out := Series{Name: s.Name, X: append([]float64(nil), s.X...), Y: make([]float64, len(s.Y))}
	for i, y := range s.Y {
		if y > cap || math.IsInf(y, 1) {
			out.Y[i] = cap
		} else {
			out.Y[i] = y
		}
	}
	return out
}

// Downsample returns a copy keeping every k-th point (k >= 1). Figures with
// hundreds of thousands of routing-message points are thinned before ASCII
// rendering.
func (s Series) Downsample(k int) Series {
	if k < 1 {
		k = 1
	}
	out := Series{Name: s.Name}
	for i := 0; i < s.Len(); i += k {
		out.Append(s.X[i], s.Y[i])
	}
	return out
}

// BinMax buckets the series into fixed-width x bins of width w and keeps
// the maximum y per bin; x of each output point is the bin's left edge.
// Used for cluster graphs (largest cluster per round window).
func (s Series) BinMax(w float64) Series {
	out := Series{Name: s.Name}
	if s.Len() == 0 || w <= 0 {
		return out
	}
	curBin := math.Floor(s.X[0] / w)
	curMax := s.Y[0]
	for i := 1; i < s.Len(); i++ {
		b := math.Floor(s.X[i] / w)
		if b != curBin {
			out.Append(curBin*w, curMax)
			curBin, curMax = b, s.Y[i]
			continue
		}
		if s.Y[i] > curMax {
			curMax = s.Y[i]
		}
	}
	out.Append(curBin*w, curMax)
	return out
}
