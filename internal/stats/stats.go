// Package stats provides the statistical machinery the experiments need:
// running moments (Welford), autocorrelation (paper Fig 2), histograms,
// quantiles and simple time-series utilities. Everything is pure
// computation over float64 slices; no I/O.
package stats

import (
	"math"
	"sort"
)

// Running accumulates count, mean and variance with Welford's online
// algorithm, which stays numerically stable across the magnitudes this
// repository sees (sub-millisecond processing times to 10^12-second hitting
// times). The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean, or NaN with no observations.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the unbiased sample variance (n−1 denominator), or NaN
// with fewer than two observations.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation, or NaN with none.
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the largest observation, or NaN with none.
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}

// Merge folds another accumulator into r (parallel Welford combination).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	mean := r.mean + d*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	min, max := r.min, r.max
	if o.min < min {
		min = o.min
	}
	if o.max > max {
		max = o.max
	}
	*r = Running{n: n, mean: mean, m2: m2, min: min, max: max}
}

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or NaN if len < 2.
func Variance(xs []float64) float64 {
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	return r.Variance()
}

// Autocorrelation returns the sample autocorrelation function of xs for
// lags 0..maxLag inclusive (so the result has maxLag+1 entries), using the
// standard biased estimator
//
//	r(k) = Σ_{t} (x_t − x̄)(x_{t+k} − x̄) / Σ_t (x_t − x̄)²
//
// This is the statistic behind the paper's Figure 2, where roundtrip times
// separated by 89 pings (~90 s of IGRP updates) correlate strongly.
// maxLag is clipped to len(xs)−1. A constant series returns r(0)=1 and 0
// for all other lags.
func Autocorrelation(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if n == 0 {
		return nil
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		maxLag = 0
	}
	mean := Mean(xs)
	var denom float64
	centered := make([]float64, n)
	for i, x := range xs {
		centered[i] = x - mean
		denom += centered[i] * centered[i]
	}
	out := make([]float64, maxLag+1)
	if denom == 0 {
		out[0] = 1
		return out
	}
	for k := 0; k <= maxLag; k++ {
		var num float64
		for t := 0; t+k < n; t++ {
			num += centered[t] * centered[t+k]
		}
		out[k] = num / denom
	}
	return out
}

// PeakLag returns the lag in [lo, hi] (inclusive) with the largest
// autocorrelation value, ignoring lag 0. It returns -1 if the range is
// empty or out of bounds.
func PeakLag(acf []float64, lo, hi int) int {
	if lo < 1 {
		lo = 1
	}
	if hi >= len(acf) {
		hi = len(acf) - 1
	}
	if lo > hi {
		return -1
	}
	best, bestLag := math.Inf(-1), -1
	for k := lo; k <= hi; k++ {
		if acf[k] > best {
			best, bestLag = acf[k], k
		}
	}
	return bestLag
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the numpy/R default).
// It returns NaN for empty input and panics for q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Histogram is a fixed-width binned count over [Lo, Hi). Values outside
// the range are tallied in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over
// [lo, hi). It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs bins > 0")
	}
	if hi <= lo {
		panic("stats: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add tallies one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard against floating-point edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations Added, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Mode returns the index of the fullest bin (ties to the lowest index).
func (h *Histogram) Mode() int {
	best, idx := -1, 0
	for i, c := range h.Counts {
		if c > best {
			best, idx = c, i
		}
	}
	return idx
}
