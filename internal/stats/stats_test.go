package stats

import (
	"math"
	"testing"
	"testing/quick"

	"routesync/internal/rng"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.N() != 0 || !math.IsNaN(r.Mean()) || !math.IsNaN(r.Variance()) ||
		!math.IsNaN(r.Min()) || !math.IsNaN(r.Max()) {
		t.Fatal("zero-value Running should report NaN statistics")
	}
}

func TestRunningBasic(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if !almostEq(r.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", r.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if !almostEq(r.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", r.Variance(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningSingleObservation(t *testing.T) {
	var r Running
	r.Add(3.5)
	if r.Mean() != 3.5 || !math.IsNaN(r.Variance()) {
		t.Fatalf("single obs: mean=%v var=%v", r.Mean(), r.Variance())
	}
}

// TestRunningMatchesDirect cross-checks Welford against the two-pass
// formula on random data.
func TestRunningMatchesDirect(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(500)
		xs := make([]float64, n)
		var run Running
		for i := range xs {
			xs[i] = r.Uniform(-100, 100)
			run.Add(xs[i])
		}
		return almostEq(run.Mean(), Mean(xs), 1e-9) &&
			almostEq(run.Variance(), Variance(xs), 1e-6)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRunningMerge(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		nA, nB := 1+r.Intn(100), 1+r.Intn(100)
		var a, b, all Running
		for i := 0; i < nA; i++ {
			x := r.Uniform(0, 50)
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < nB; i++ {
			x := r.Uniform(-50, 0)
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		return a.N() == all.N() &&
			almostEq(a.Mean(), all.Mean(), 1e-9) &&
			almostEq(a.Variance(), all.Variance(), 1e-6) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(3)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatal("merge with empty changed accumulator")
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Fatal("merge into empty did not copy")
	}
}

func TestMeanVarianceEdge(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of one value should be NaN")
	}
}

func TestAutocorrelationLagZero(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3}
	acf := Autocorrelation(xs, 3)
	if !almostEq(acf[0], 1, 1e-12) {
		t.Fatalf("acf[0] = %v, want 1", acf[0])
	}
	if len(acf) != 4 {
		t.Fatalf("len(acf) = %d, want 4", len(acf))
	}
}

func TestAutocorrelationPeriodicSignal(t *testing.T) {
	// A signal with period 10 must peak at lag 10 — the Fig 2 mechanism
	// (RTT spikes every ~89 pings peak the ACF at lag 89).
	const period = 10
	xs := make([]float64, 400)
	for i := range xs {
		if i%period == 0 {
			xs[i] = 2.0 // "dropped ping" sentinel, as in the paper
		} else {
			xs[i] = 0.05
		}
	}
	acf := Autocorrelation(xs, 50)
	if got := PeakLag(acf, 2, 50); got != period {
		t.Fatalf("PeakLag = %d, want %d", got, period)
	}
	if acf[period] < 0.9 {
		t.Fatalf("acf[%d] = %v, want near 1", period, acf[period])
	}
	if acf[period/2] > 0.2 {
		t.Fatalf("acf at half period = %v, want near 0 or negative", acf[period/2])
	}
}

func TestAutocorrelationConstantSeries(t *testing.T) {
	acf := Autocorrelation([]float64{4, 4, 4, 4}, 2)
	if acf[0] != 1 || acf[1] != 0 || acf[2] != 0 {
		t.Fatalf("constant series acf = %v", acf)
	}
}

func TestAutocorrelationEmptyAndClipping(t *testing.T) {
	if Autocorrelation(nil, 5) != nil {
		t.Fatal("empty input should return nil")
	}
	acf := Autocorrelation([]float64{1, 2, 3}, 100)
	if len(acf) != 3 {
		t.Fatalf("maxLag should clip to n−1; len = %d", len(acf))
	}
	acf = Autocorrelation([]float64{1, 2, 3}, -2)
	if len(acf) != 1 {
		t.Fatalf("negative maxLag should clip to 0; len = %d", len(acf))
	}
}

// TestAutocorrelationBounds: |r(k)| <= 1 + ε for random data.
func TestAutocorrelationBounds(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Uniform(-10, 10)
		}
		for _, v := range Autocorrelation(xs, n/2) {
			if math.Abs(v) > 1+1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPeakLagOutOfRange(t *testing.T) {
	acf := []float64{1, 0.5, 0.2}
	if got := PeakLag(acf, 5, 10); got != -1 {
		t.Fatalf("PeakLag out of range = %d, want -1", got)
	}
	if got := PeakLag(acf, 0, 2); got != 1 {
		t.Fatalf("PeakLag should skip lag 0; got %d", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 9 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Median(xs); !almostEq(got, 3.5, 1e-12) {
		t.Fatalf("median = %v, want 3.5", got)
	}
	if got := Quantile([]float64{7}, 0.73); got != 7 {
		t.Fatalf("singleton quantile = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(1.5) did not panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

// TestQuantileMonotonic: quantiles are nondecreasing in q.
func TestQuantileMonotonic(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Uniform(-5, 5)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.999, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", h.Under, h.Over)
	}
	want := []int{2, 1, 1, 0, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bin %d = %d, want %d (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Mode() != 0 {
		t.Fatalf("mode = %d", h.Mode())
	}
	if !almostEq(h.BinCenter(0), 1, 1e-12) {
		t.Fatalf("BinCenter(0) = %v", h.BinCenter(0))
	}
}

func TestHistogramConservation(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		h := NewHistogram(-1, 1, 1+r.Intn(20))
		n := 100 + r.Intn(1000)
		for i := 0; i < n; i++ {
			h.Add(r.Uniform(-2, 2))
		}
		sum := h.Under + h.Over
		for _, c := range h.Counts {
			sum += c
		}
		return sum == n && h.Total() == n
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad histogram construction did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSeriesBasics(t *testing.T) {
	var s Series
	s.Append(1, 10)
	s.Append(2, math.Inf(1))
	s.Append(3, 5)
	s.Append(4, math.NaN())
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	lo, hi := s.YRange()
	if lo != 5 || hi != 10 {
		t.Fatalf("YRange = %v,%v, want 5,10", lo, hi)
	}
}

func TestSeriesYRangeAllBad(t *testing.T) {
	var s Series
	s.Append(1, math.NaN())
	lo, hi := s.YRange()
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Fatal("YRange of all-NaN should be NaN,NaN")
	}
}

func TestSeriesClampY(t *testing.T) {
	var s Series
	s.Append(0, 1e15)
	s.Append(1, math.Inf(1))
	s.Append(2, 7)
	c := s.ClampY(1e12)
	if c.Y[0] != 1e12 || c.Y[1] != 1e12 || c.Y[2] != 7 {
		t.Fatalf("ClampY = %v", c.Y)
	}
	if s.Y[0] != 1e15 {
		t.Fatal("ClampY mutated the original")
	}
}

func TestSeriesDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i*i))
	}
	d := s.Downsample(3)
	if d.Len() != 4 || d.X[1] != 3 || d.Y[3] != 81 {
		t.Fatalf("Downsample = %+v", d)
	}
	if s.Downsample(0).Len() != s.Len() {
		t.Fatal("Downsample(0) should behave like 1")
	}
}

func TestSeriesBinMax(t *testing.T) {
	var s Series
	pts := [][2]float64{{0.1, 1}, {0.5, 3}, {0.9, 2}, {1.2, 7}, {2.5, 4}, {2.6, 9}}
	for _, p := range pts {
		s.Append(p[0], p[1])
	}
	b := s.BinMax(1.0)
	if b.Len() != 3 {
		t.Fatalf("BinMax bins = %d, want 3 (%+v)", b.Len(), b)
	}
	if b.Y[0] != 3 || b.Y[1] != 7 || b.Y[2] != 9 {
		t.Fatalf("BinMax Y = %v", b.Y)
	}
	if b.X[0] != 0 || b.X[1] != 1 || b.X[2] != 2 {
		t.Fatalf("BinMax X = %v", b.X)
	}
}

func TestSeriesBinMaxEmpty(t *testing.T) {
	var s Series
	if s.BinMax(1).Len() != 0 {
		t.Fatal("BinMax on empty series should be empty")
	}
}

func BenchmarkAutocorrelation1000x100(b *testing.B) {
	r := rng.New(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Autocorrelation(xs, 100)
	}
}
