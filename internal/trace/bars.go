package trace

import (
	"fmt"
	"math"
	"strings"
)

// Bars renders a horizontal ASCII bar chart: one labelled row per value.
// Values must be non-negative; NaN/Inf render as "n/a". Width is the
// maximum bar length in characters (default 40).
func Bars(labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic("trace: Bars needs one label per value")
	}
	if width <= 0 {
		width = 40
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	max := 0.0
	for _, v := range values {
		if !math.IsNaN(v) && !math.IsInf(v, 0) && v > max {
			max = v
		}
	}
	var b strings.Builder
	for i, l := range labels {
		v := values[i]
		b.WriteString(fmt.Sprintf("%-*s |", labelW, l))
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			b.WriteString(" n/a\n")
			continue
		}
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		b.WriteString(strings.Repeat("#", n))
		b.WriteString(fmt.Sprintf(" %.4g\n", v))
	}
	return b.String()
}

// Table renders rows as an aligned text table with a header line.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		if len(row) != len(headers) {
			panic("trace: Table row width mismatch")
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(fmt.Sprintf("%-*s", widths[i], cell))
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
