package trace

import (
	"math"
	"strings"
	"testing"
)

func TestBarsBasic(t *testing.T) {
	out := Bars([]string{"a", "bb"}, []float64{10, 5}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.Contains(lines[0], "##########") {
		t.Fatalf("max bar not full width: %q", lines[0])
	}
	if !strings.Contains(lines[1], "#####") || strings.Contains(lines[1], "######") {
		t.Fatalf("half bar wrong: %q", lines[1])
	}
	if !strings.Contains(lines[0], "10") || !strings.Contains(lines[1], "5") {
		t.Fatal("values missing")
	}
	// labels aligned
	if !strings.HasPrefix(lines[0], "a  |") || !strings.HasPrefix(lines[1], "bb |") {
		t.Fatalf("alignment wrong: %q / %q", lines[0], lines[1])
	}
}

func TestBarsSpecialValues(t *testing.T) {
	out := Bars([]string{"nan", "inf", "zero"}, []float64{math.NaN(), math.Inf(1), 0}, 10)
	if strings.Count(out, "n/a") != 2 {
		t.Fatalf("out = %q", out)
	}
	if !strings.Contains(out, "zero |") {
		t.Fatalf("zero row missing: %q", out)
	}
}

func TestBarsAllZero(t *testing.T) {
	out := Bars([]string{"a"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Fatalf("zero value drew a bar: %q", out)
	}
}

func TestBarsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched labels did not panic")
		}
	}()
	Bars([]string{"a"}, []float64{1, 2}, 10)
}

func TestTable(t *testing.T) {
	out := Table([]string{"id", "value"}, [][]string{
		{"fig01", "3.3%"},
		{"fig15", "flip at 27"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "id   ") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "-----") {
		t.Fatalf("separator = %q", lines[1])
	}
	if !strings.Contains(lines[3], "flip at 27") {
		t.Fatalf("row = %q", lines[3])
	}
}

func TestTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged row did not panic")
		}
	}()
	Table([]string{"a", "b"}, [][]string{{"only-one"}})
}
