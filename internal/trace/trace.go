// Package trace renders experiment output: CSV series files (for external
// plotting) and ASCII scatter/line plots (so every paper figure can be
// inspected in a terminal with no tooling). It is deliberately stdlib-only.
package trace

import (
	"fmt"
	"io"
	"math"
	"strings"

	"routesync/internal/stats"
)

// WriteCSV emits the series in long format: series,x,y — one row per
// point, trivially loadable by any plotting tool.
func WriteCSV(w io.Writer, series ...stats.Series) error {
	if _, err := io.WriteString(w, "series,x,y\n"); err != nil {
		return err
	}
	for _, s := range series {
		name := s.Name
		if name == "" {
			name = "series"
		}
		for i := 0; i < s.Len(); i++ {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", name, s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// PlotOptions controls ASCII rendering.
type PlotOptions struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the plotting area in characters; zero values
	// default to 72×20.
	Width, Height int
	// LogY plots log10(y); non-positive values are skipped.
	LogY bool
	// YMin/YMax fix the y range; NaN (or zero-valued struct) means auto.
	YMin, YMax float64
}

// Markers assigns one rune per series, cycling if there are more series.
var Markers = []rune{'*', '+', 'o', 'x', '#', '@', '%', '~'}

// Render draws the series as an ASCII scatter plot. NaN/Inf points are
// skipped. An empty plot (no finite points) renders the frame with a
// "no data" note.
func Render(opt PlotOptions, series ...stats.Series) string {
	w, h := opt.Width, opt.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}

	tx := func(x float64) float64 { return x }
	ty := func(y float64) float64 { return y }
	if opt.LogY {
		ty = func(y float64) float64 {
			if y <= 0 {
				return math.NaN()
			}
			return math.Log10(y)
		}
	}

	// Determine ranges over finite transformed points.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	fixedYMin := !math.IsNaN(opt.YMin) && (opt.YMin != 0 || opt.YMax != 0)
	fixedYMax := !math.IsNaN(opt.YMax) && (opt.YMin != 0 || opt.YMax != 0)
	for _, s := range series {
		for i := 0; i < s.Len(); i++ {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if fixedYMin {
		ymin = opt.YMin
		if opt.LogY {
			ymin = math.Log10(math.Max(opt.YMin, math.SmallestNonzeroFloat64))
		}
	}
	if fixedYMax {
		ymax = opt.YMax
		if opt.LogY {
			ymax = math.Log10(opt.YMax)
		}
	}

	var b strings.Builder
	if opt.Title != "" {
		b.WriteString(opt.Title)
		b.WriteByte('\n')
	}
	if math.IsInf(xmin, 1) || ymin > ymax {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = make([]rune, w)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for si, s := range series {
		mark := Markers[si%len(Markers)]
		for i := 0; i < s.Len(); i++ {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			c := int(float64(w-1) * (x - xmin) / (xmax - xmin))
			r := h - 1 - int(float64(h-1)*(y-ymin)/(ymax-ymin))
			if c < 0 || c >= w || r < 0 || r >= h {
				continue
			}
			grid[r][c] = mark
		}
	}

	yfmt := func(v float64) string {
		if opt.LogY {
			return fmt.Sprintf("%8.2e", math.Pow(10, v))
		}
		return fmt.Sprintf("%8.3g", v)
	}
	for r := 0; r < h; r++ {
		label := "        "
		switch r {
		case 0:
			label = yfmt(ymax)
		case h - 1:
			label = yfmt(ymin)
		case (h - 1) / 2:
			label = yfmt(ymin + (ymax-ymin)*float64(h-1-r)/float64(h-1))
		}
		b.WriteString(label)
		b.WriteString(" |")
		b.WriteString(string(grid[r]))
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 9))
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", w))
	b.WriteByte('\n')
	b.WriteString(fmt.Sprintf("%10s%-12.4g%s%12.4g\n", "", xmin, strings.Repeat(" ", max(0, w-24)), xmax))
	if opt.XLabel != "" || opt.YLabel != "" {
		b.WriteString(fmt.Sprintf("%10sx: %s   y: %s\n", "", opt.XLabel, opt.YLabel))
	}
	// legend
	if len(series) > 1 || (len(series) == 1 && series[0].Name != "") {
		b.WriteString(strings.Repeat(" ", 10))
		for si, s := range series {
			name := s.Name
			if name == "" {
				name = fmt.Sprintf("series%d", si)
			}
			b.WriteString(fmt.Sprintf("[%c] %s  ", Markers[si%len(Markers)], name))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
