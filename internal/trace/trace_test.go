package trace

import (
	"math"
	"strings"
	"testing"

	"routesync/internal/stats"
)

func mkSeries(name string, pts ...[2]float64) stats.Series {
	s := stats.Series{Name: name}
	for _, p := range pts {
		s.Append(p[0], p[1])
	}
	return s
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	s1 := mkSeries("a", [2]float64{1, 2}, [2]float64{3, 4})
	s2 := mkSeries("", [2]float64{5, 6})
	if err := WriteCSV(&b, s1, s2); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "series,x,y\na,1,2\na,3,4\nseries,5,6\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}

func TestRenderBasics(t *testing.T) {
	s := mkSeries("line", [2]float64{0, 0}, [2]float64{10, 10})
	out := Render(PlotOptions{Title: "T", XLabel: "x", YLabel: "y"}, s)
	if !strings.Contains(out, "T\n") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("missing markers")
	}
	if !strings.Contains(out, "x: x   y: y") {
		t.Fatal("missing axis labels")
	}
	if !strings.Contains(out, "[*] line") {
		t.Fatal("missing legend")
	}
}

func TestRenderCornersLandAtCorners(t *testing.T) {
	s := mkSeries("", [2]float64{0, 0}, [2]float64{1, 1})
	out := Render(PlotOptions{Width: 11, Height: 5}, s)
	lines := strings.Split(out, "\n")
	// top row contains the max point at the right edge
	if !strings.HasSuffix(strings.TrimRight(lines[0], " "), "*") {
		t.Fatalf("top row = %q", lines[0])
	}
	// bottom plot row contains the min point right after the axis bar
	bottom := lines[4]
	idx := strings.Index(bottom, "|")
	if idx < 0 || bottom[idx+1] != '*' {
		t.Fatalf("bottom row = %q", bottom)
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Render(PlotOptions{Title: "empty"})
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("out = %q", out)
	}
	// all-NaN series also yields no data
	s := mkSeries("nan", [2]float64{1, math.NaN()})
	if !strings.Contains(Render(PlotOptions{}, s), "(no data)") {
		t.Fatal("NaN-only series should render as no data")
	}
}

func TestRenderLogY(t *testing.T) {
	s := mkSeries("exp", [2]float64{0, 1}, [2]float64{1, 100}, [2]float64{2, 10000})
	out := Render(PlotOptions{LogY: true, Width: 21, Height: 9}, s)
	// On a log axis the three points form a straight diagonal: marker
	// columns 0, 10, 20; rows 8, 4, 0.
	lines := strings.Split(out, "\n")
	find := func(row int) int {
		line := lines[row]
		idx := strings.Index(line, "|")
		return strings.IndexRune(line[idx+1:], '*')
	}
	if c := find(8); c != 0 {
		t.Fatalf("bottom point at col %d, want 0", c)
	}
	if c := find(4); c != 10 {
		t.Fatalf("middle point at col %d, want 10", c)
	}
	if c := find(0); c != 20 {
		t.Fatalf("top point at col %d, want 20", c)
	}
	if !strings.Contains(out, "e+") {
		t.Fatal("log axis labels should be scientific")
	}
}

func TestRenderLogYSkipsNonPositive(t *testing.T) {
	s := mkSeries("mix", [2]float64{0, 0}, [2]float64{1, -5}, [2]float64{2, 10})
	out := Render(PlotOptions{LogY: true}, s)
	if strings.Contains(out, "(no data)") {
		t.Fatal("positive points should still render")
	}
	count := 0
	for _, line := range strings.Split(out, "\n") {
		if idx := strings.Index(line, "|"); idx >= 0 {
			count += strings.Count(line[idx:], "*")
		}
	}
	if count != 1 {
		t.Fatalf("marker count = %d, want 1 (non-positive skipped)", count)
	}
}

func TestRenderFixedYRange(t *testing.T) {
	s := mkSeries("s", [2]float64{0, 5}, [2]float64{1, 6})
	out := Render(PlotOptions{YMin: 0, YMax: 10, Height: 11, Width: 11}, s)
	if !strings.Contains(out, "10") {
		t.Fatalf("fixed y max not applied: %q", out)
	}
}

func TestRenderMultiSeriesMarkers(t *testing.T) {
	a := mkSeries("a", [2]float64{0, 0})
	b := mkSeries("b", [2]float64{1, 1})
	out := Render(PlotOptions{}, a, b)
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("distinct markers not used")
	}
	if !strings.Contains(out, "[*] a") || !strings.Contains(out, "[+] b") {
		t.Fatal("legend incomplete")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	s := mkSeries("flat", [2]float64{0, 5}, [2]float64{1, 5}, [2]float64{2, 5})
	out := Render(PlotOptions{}, s)
	if strings.Contains(out, "(no data)") {
		t.Fatal("constant series should render")
	}
	if strings.Count(out, "*") == 0 {
		t.Fatal("constant series markers missing")
	}
}
