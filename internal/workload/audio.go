package workload

import "routesync/internal/netsim"

// AudioConfig parameterizes a constant-bit-rate audio stream — the
// packet-audio workload of the paper's Figure 3 (the December 1992 Packet
// Video workshop audiocast).
type AudioConfig struct {
	// Rate is packets per second (typical packet audio: 50 pps at 20 ms
	// framing).
	Rate float64
	// Duration of the stream in seconds (paper's figure: 600 s).
	Duration float64
	// Size of each audio packet in bytes; zero means 180 (20 ms of
	// 8 kHz PCM plus headers, the vat default era framing).
	Size int
}

// AudioStream sends CBR traffic from src to dst and records which frames
// arrive.
type AudioStream struct {
	net      *netsim.Network
	src, dst *netsim.Node
	cfg      AudioConfig
	count    int
	received []bool
	start    float64
}

// NewAudioStream wires the stream; Start schedules it. It panics on
// invalid config.
func NewAudioStream(src, dst *netsim.Node, cfg AudioConfig) *AudioStream {
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		panic("workload: audio rate and duration must be positive")
	}
	if cfg.Size == 0 {
		cfg.Size = 180
	}
	count := int(cfg.Rate * cfg.Duration)
	s := &AudioStream{
		net:      src.Net(),
		src:      src,
		dst:      dst,
		cfg:      cfg,
		count:    count,
		received: make([]bool, count),
	}
	if dst.OnDeliver == nil {
		dst.OnDeliver = make(map[netsim.Kind]func(*netsim.Packet))
	}
	dst.OnDeliver[netsim.KindData] = func(pkt *netsim.Packet) {
		if pkt.Src != src.ID {
			return
		}
		seq := int(pkt.Seq)
		if seq >= 0 && seq < count {
			s.received[seq] = true
		}
	}
	return s
}

// Start schedules the whole stream beginning at the given absolute time.
func (s *AudioStream) Start(at float64) {
	s.start = at
	gap := 1 / s.cfg.Rate
	for i := 0; i < s.count; i++ {
		i := i
		s.src.Schedule(at+float64(i)*gap, "audio-frame", func() {
			pkt := s.net.NewPacket(netsim.KindData, s.src.ID, s.dst.ID, s.cfg.Size)
			pkt.Seq = int64(i)
			s.net.Inject(pkt)
		})
	}
}

// Result returns the delivery bitmap and run geometry.
func (s *AudioStream) Result() AudioResult {
	return AudioResult{
		Received: append([]bool(nil), s.received...),
		Gap:      1 / s.cfg.Rate,
		Start:    s.start,
	}
}

// AudioResult is a completed stream: Received[i] tells whether frame i
// arrived; frames are Gap seconds apart starting at Start.
type AudioResult struct {
	Received []bool
	Gap      float64
	Start    float64
}

// Sent returns the number of frames sent.
func (r AudioResult) Sent() int { return len(r.Received) }

// Lost returns the number of frames lost.
func (r AudioResult) Lost() int {
	lost := 0
	for _, ok := range r.Received {
		if !ok {
			lost++
		}
	}
	return lost
}

// LossRate returns the overall fraction lost.
func (r AudioResult) LossRate() float64 {
	if len(r.Received) == 0 {
		return 0
	}
	return float64(r.Lost()) / float64(len(r.Received))
}

// Outage is a maximal run of consecutive lost frames — the paper's
// Figure 3 y-axis is the duration of each such audio outage.
type Outage struct {
	// Start is the send time of the first lost frame.
	Start float64
	// Duration is the outage length in seconds (lost frames × gap).
	Duration float64
	// Lost is the number of frames in the run.
	Lost int
}

// Outages extracts the outage list from the delivery bitmap.
func (r AudioResult) Outages() []Outage {
	var out []Outage
	runStart := -1
	flush := func(end int) {
		if runStart < 0 {
			return
		}
		n := end - runStart
		out = append(out, Outage{
			Start:    r.Start + float64(runStart)*r.Gap,
			Duration: float64(n) * r.Gap,
			Lost:     n,
		})
		runStart = -1
	}
	for i, ok := range r.Received {
		if !ok {
			if runStart < 0 {
				runStart = i
			}
			continue
		}
		flush(i)
	}
	flush(len(r.Received))
	return out
}

// LossRateIn returns the loss fraction among frames sent in [from, to).
func (r AudioResult) LossRateIn(from, to float64) float64 {
	sent, lost := 0, 0
	for i, ok := range r.Received {
		t := r.Start + float64(i)*r.Gap
		if t < from || t >= to {
			continue
		}
		sent++
		if !ok {
			lost++
		}
	}
	if sent == 0 {
		return 0
	}
	return float64(lost) / float64(sent)
}
