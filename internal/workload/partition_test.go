package workload

import (
	"reflect"
	"testing"

	"routesync/internal/netsim"
)

// tracerouteChain builds a 10-node chain, optionally partitioned into k
// logical processes, and returns the recorded path of a probe from end
// to end plus its RTT. The chain's links all have positive delay, so any
// contiguous split is a valid partitioning.
func tracerouteChain(k int) workloadTraceSnap {
	n := netsim.NewNetwork(44)
	names := make([]string, 10)
	for i := range names {
		names[i] = "c"
	}
	nodes := n.BuildChain(names, nil, netsim.LinkConfig{
		Delay: 0.004, Bandwidth: 1e6, QueueCap: 8,
	})
	if k > 0 {
		total := len(nodes)
		n.Partition(k, func(id netsim.NodeID) int { return int(id) * k / total })
	}
	res := Traceroute(nodes[0], nodes[len(nodes)-1], 10)
	return workloadTraceSnap{res: res, now: n.Now()}
}

type workloadTraceSnap struct {
	res TracerouteResult
	now float64
}

// TestTracerouteAcrossPartitions: a record-route probe whose path crosses
// several partition boundaries must record exactly the hops (ids and
// timestamps) of the sequential run — the RecordRoute append happens in
// whichever LP owns each hop, and the packet carries the slice across.
func TestTracerouteAcrossPartitions(t *testing.T) {
	ref := tracerouteChain(0)
	if !ref.res.Reached || len(ref.res.Hops) != 9 {
		t.Fatalf("sequential probe: reached=%v hops=%+v", ref.res.Reached, ref.res.Hops)
	}
	for _, k := range []int{1, 2, 4, 5} {
		got := tracerouteChain(k)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("k=%d: traceroute diverges from sequential:\n got %+v\nwant %+v", k, got, ref)
		}
	}
}
