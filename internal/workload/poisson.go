package workload

import (
	"routesync/internal/netsim"
	"routesync/internal/rng"
)

// PoissonConfig parameterizes background cross-traffic: packets injected
// from src to dst with exponential inter-arrival times. The paper's
// measured paths carried real Internet traffic under the pings and the
// audio; Poisson traffic is the standard stand-in for that load and lets
// experiments exercise queueing interactions between background traffic
// and routing-update stalls.
type PoissonConfig struct {
	// Rate is the mean packets per second.
	Rate float64
	// Size is bytes per packet; zero means 512.
	Size int
	// Duration of the flow in seconds.
	Duration float64
	// Seed drives the arrival process.
	Seed int64
}

// PoissonSource injects the flow and counts deliveries at the sink.
type PoissonSource struct {
	net      *netsim.Network
	src, dst *netsim.Node
	cfg      PoissonConfig
	r        *rng.Source
	sent     uint64
	received uint64
	stopAt   float64
}

// NewPoissonSource wires the flow; Start schedules it. It panics on
// invalid config.
func NewPoissonSource(src, dst *netsim.Node, cfg PoissonConfig) *PoissonSource {
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		panic("workload: poisson rate and duration must be positive")
	}
	if cfg.Size == 0 {
		cfg.Size = 512
	}
	p := &PoissonSource{
		net: src.Net(),
		src: src,
		dst: dst,
		cfg: cfg,
		r:   rng.New(cfg.Seed),
	}
	if dst.OnDeliver == nil {
		dst.OnDeliver = make(map[netsim.Kind]func(*netsim.Packet))
	}
	prev := dst.OnDeliver[netsim.KindData]
	dst.OnDeliver[netsim.KindData] = func(pkt *netsim.Packet) {
		if pkt.Src == src.ID {
			p.received++
			return
		}
		if prev != nil {
			prev(pkt)
		}
	}
	return p
}

// Start begins the arrival process at the given absolute time.
func (p *PoissonSource) Start(at float64) {
	p.stopAt = at + p.cfg.Duration
	p.src.Schedule(at+p.r.Exponential(1/p.cfg.Rate), "poisson-arrival", p.tick)
}

func (p *PoissonSource) tick() {
	now := p.src.Now()
	if now >= p.stopAt {
		return
	}
	pkt := p.net.NewPacket(netsim.KindData, p.src.ID, p.dst.ID, p.cfg.Size)
	p.net.Inject(pkt)
	p.sent++
	p.src.After(p.r.Exponential(1/p.cfg.Rate), "poisson-arrival", p.tick)
}

// Sent returns the packets injected so far.
func (p *PoissonSource) Sent() uint64 { return p.sent }

// Received returns the packets delivered at the sink so far.
func (p *PoissonSource) Received() uint64 { return p.received }

// LossRate returns the fraction of injected packets not (yet) delivered.
func (p *PoissonSource) LossRate() float64 {
	if p.sent == 0 {
		return 0
	}
	return float64(p.sent-p.received) / float64(p.sent)
}
