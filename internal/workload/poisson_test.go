package workload

import (
	"math"
	"testing"

	"routesync/internal/netsim"
)

func TestPoissonRate(t *testing.T) {
	n, nodes := pingPath(20, nil)
	p := NewPoissonSource(nodes[0], nodes[2], PoissonConfig{Rate: 100, Duration: 100, Seed: 1})
	p.Start(0)
	n.RunUntil(200)
	sent := float64(p.Sent())
	if math.Abs(sent-10000)/10000 > 0.05 {
		t.Fatalf("sent %v packets in 100 s at 100 pps, want ~10000", sent)
	}
	if p.Received() != p.Sent() {
		t.Fatalf("lossless path lost packets: %d/%d", p.Received(), p.Sent())
	}
	if p.LossRate() != 0 {
		t.Fatalf("loss rate = %v", p.LossRate())
	}
}

func TestPoissonInterArrivalDistribution(t *testing.T) {
	// The arrival count in disjoint 1-second windows should have
	// variance ≈ mean (Poisson property). A crude index-of-dispersion
	// check guards against accidentally-regular arrivals.
	n := netsim.NewNetwork(2)
	nodes := n.BuildChain([]string{"a", "b"}, nil, netsim.LinkConfig{})
	var windows []int
	count := 0
	next := 1.0
	nodes[1].OnDeliver = map[netsim.Kind]func(*netsim.Packet){}
	p := NewPoissonSource(nodes[0], nodes[1], PoissonConfig{Rate: 20, Duration: 200, Seed: 3})
	// wrap the existing handler to bin arrivals by time
	inner := nodes[1].OnDeliver[netsim.KindData]
	nodes[1].OnDeliver[netsim.KindData] = func(pkt *netsim.Packet) {
		for n.Sim.Now() >= next {
			windows = append(windows, count)
			count = 0
			next++
		}
		count++
		if inner != nil {
			inner(pkt)
		}
	}
	p.Start(0)
	n.RunUntil(250)
	if len(windows) < 150 {
		t.Fatalf("too few windows: %d", len(windows))
	}
	var sum, sumSq float64
	for _, c := range windows {
		sum += float64(c)
		sumSq += float64(c) * float64(c)
	}
	mean := sum / float64(len(windows))
	variance := sumSq/float64(len(windows)) - mean*mean
	dispersion := variance / mean
	if dispersion < 0.7 || dispersion > 1.4 {
		t.Fatalf("index of dispersion = %v, want ~1 (Poisson)", dispersion)
	}
}

func TestPoissonLossThroughBusyRouter(t *testing.T) {
	n, nodes := pingPath(4, &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
	p := NewPoissonSource(nodes[0], nodes[2], PoissonConfig{Rate: 200, Duration: 30, Seed: 4})
	p.Start(0)
	// Stall the router for 3 of the 30 seconds: ~10% loss expected.
	n.Sim.Schedule(10, "occupy", func() { nodes[1].CPU.Occupy(3) })
	n.RunUntil(60)
	loss := p.LossRate()
	if loss < 0.05 || loss > 0.15 {
		t.Fatalf("loss rate = %v, want ~0.10", loss)
	}
	// Per-node accounting: the router dropped them.
	st := nodes[1].Stats()
	if st.Dropped[netsim.DropCPUBusy] == 0 {
		t.Fatal("router stats show no cpu-busy drops")
	}
}

func TestPoissonChainsWithExistingHandler(t *testing.T) {
	// A Poisson sink must not clobber another flow's delivery handler.
	n, nodes := pingPath(5, nil)
	got := 0
	nodes[2].OnDeliver = map[netsim.Kind]func(*netsim.Packet){
		netsim.KindData: func(pkt *netsim.Packet) { got++ },
	}
	other := n.NewNode("other", nil)
	n.Connect(other, nodes[1], netsim.LinkConfig{})
	n.InstallStaticRoutes()
	p := NewPoissonSource(other, nodes[2], PoissonConfig{Rate: 50, Duration: 10, Seed: 5})
	p.Start(0)
	// A data packet from the original src must still reach the old handler.
	n.Sim.Schedule(1, "inject", func() {
		n.Inject(n.NewPacket(netsim.KindData, nodes[0].ID, nodes[2].ID, 100))
	})
	n.RunUntil(30)
	if got != 1 {
		t.Fatalf("existing handler starved: got %d", got)
	}
	if p.Received() == 0 {
		t.Fatal("poisson sink got nothing")
	}
}

func TestPoissonValidation(t *testing.T) {
	n := netsim.NewNetwork(6)
	nodes := n.BuildChain([]string{"a", "b"}, nil, netsim.LinkConfig{})
	for _, cfg := range []PoissonConfig{
		{Rate: 0, Duration: 10},
		{Rate: 10, Duration: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid poisson config did not panic")
				}
			}()
			NewPoissonSource(nodes[0], nodes[1], cfg)
		}()
	}
}

func TestNodeStatsCounters(t *testing.T) {
	n, nodes := pingPath(7, nil)
	p := NewPinger(nodes[0], nodes[2], PingConfig{Interval: 1, Count: 10})
	p.Start(0)
	n.RunUntil(30)
	mid := nodes[1].Stats()
	// The transit router forwarded 10 requests and 10 replies.
	if mid.ForwardedOut != 20 {
		t.Fatalf("router forwarded %d, want 20", mid.ForwardedOut)
	}
	if mid.DeliveredLocal != 0 {
		t.Fatalf("router delivered %d locally", mid.DeliveredLocal)
	}
	dst := nodes[2].Stats()
	if dst.DeliveredLocal != 10 || dst.Received != 10 {
		t.Fatalf("dst stats = %+v", dst)
	}
	src := nodes[0].Stats()
	if src.DeliveredLocal != 10 {
		t.Fatalf("src delivered %d replies", src.DeliveredLocal)
	}
}
