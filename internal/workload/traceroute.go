package workload

import (
	"math"

	"routesync/internal/netsim"
)

// TracerouteResult is one probe's recorded forwarding path.
type TracerouteResult struct {
	// Reached tells whether the probe arrived at the destination.
	Reached bool
	// Hops is the path in arrival order (every node that handled the
	// probe, including the destination when reached).
	Hops []netsim.Hop
	// RTT is request + reply time when the destination echoed, else NaN.
	RTT float64
}

// Traceroute sends one record-route echo probe from src to dst, runs the
// simulation until the probe settles (or horizon), and returns the
// recorded path. It installs an echo responder on dst.
//
// Unlike real traceroute (TTL walking), the simulator can record the
// route directly; what the probe verifies is the live FIB state —
// experiments use it to show paths moving after failures and
// re-convergence.
func Traceroute(src, dst *netsim.Node, horizon float64) TracerouteResult {
	net := src.Net()
	InstallEchoResponder(dst)

	var res TracerouteResult
	res.RTT = math.NaN()
	if src.OnDeliver == nil {
		src.OnDeliver = make(map[netsim.Kind]func(*netsim.Packet))
	}
	sentAt := src.Now()
	src.OnDeliver[netsim.KindEchoReply] = func(pkt *netsim.Packet) {
		if pkt.Seq != -42 {
			return
		}
		// The node clock, not the network clock: in a partitioned run this
		// handler fires on src's logical process.
		res.RTT = src.Now() - sentAt
	}

	probe := net.NewPacket(netsim.KindEchoRequest, src.ID, dst.ID, 64)
	probe.Seq = -42
	probe.RecordRoute = true
	var gotThere bool
	prev := dst.OnDeliver[netsim.KindEchoRequest]
	dst.OnDeliver[netsim.KindEchoRequest] = func(pkt *netsim.Packet) {
		if pkt.Seq == -42 {
			gotThere = true
			res.Hops = append([]netsim.Hop(nil), pkt.Hops...)
		}
		if prev != nil {
			prev(pkt)
		}
	}
	net.Inject(probe)
	net.RunUntil(net.Now() + horizon)
	res.Reached = gotThere
	return res
}
