package workload

import (
	"math"
	"testing"

	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/routing"
)

func TestTracerouteRecordsChainPath(t *testing.T) {
	n := netsim.NewNetwork(31)
	nodes := n.BuildChain([]string{"src", "r1", "r2", "dst"}, nil, netsim.LinkConfig{Delay: 0.005})
	res := Traceroute(nodes[0], nodes[3], 10)
	if !res.Reached {
		t.Fatal("probe did not arrive")
	}
	want := []netsim.NodeID{nodes[1].ID, nodes[2].ID, nodes[3].ID}
	if len(res.Hops) != len(want) {
		t.Fatalf("hops = %+v, want %v", res.Hops, want)
	}
	for i, h := range res.Hops {
		if h.Node != want[i] {
			t.Fatalf("hop %d = %v, want %v", i, h.Node, want[i])
		}
		if i > 0 && h.At <= res.Hops[i-1].At {
			t.Fatalf("hop times not increasing: %+v", res.Hops)
		}
	}
	if math.Abs(res.RTT-0.03) > 1e-9 {
		t.Fatalf("RTT = %v, want 0.03", res.RTT)
	}
}

func TestTracerouteUnreachable(t *testing.T) {
	n := netsim.NewNetwork(32)
	a := n.NewNode("a", nil)
	b := n.NewNode("b", nil)
	n.Connect(a, b, netsim.LinkConfig{})
	// no routes installed
	res := Traceroute(a, b, 5)
	if res.Reached {
		t.Fatal("unreachable destination reported reached")
	}
	if !math.IsNaN(res.RTT) {
		t.Fatalf("RTT = %v, want NaN", res.RTT)
	}
}

// TestTraceroutePathMovesAfterReconvergence: a diamond topology where the
// short path fails; after the routing protocol re-converges, traceroute
// records the detour.
func TestTraceroutePathMovesAfterReconvergence(t *testing.T) {
	//      top
	//     /    \
	// src       dst      plus a 2-hop bottom path src—b1—b2—dst
	//
	// Hop-count metric prefers the top; when src—top fails the protocol
	// must converge onto the bottom.
	n := netsim.NewNetwork(33)
	src := n.NewNode("src", nil)
	top := n.NewNode("top", nil)
	b1 := n.NewNode("b1", nil)
	b2 := n.NewNode("b2", nil)
	dst := n.NewNode("dst", nil)
	lTop := n.Connect(src, top, netsim.LinkConfig{Delay: 0.001})
	n.Connect(top, dst, netsim.LinkConfig{Delay: 0.001})
	n.Connect(src, b1, netsim.LinkConfig{Delay: 0.001})
	n.Connect(b1, b2, netsim.LinkConfig{Delay: 0.001})
	n.Connect(b2, dst, netsim.LinkConfig{Delay: 0.001})

	prof := routing.RIP()
	prof.HoldDown = 0 // reconverge promptly in this tiny test
	cfg := routing.Config{Profile: prof, Jitter: jitter.HalfSpread{Tp: 30}, Seed: 3}
	for i, nd := range []*netsim.Node{src, top, b1, b2, dst} {
		ag := routing.NewAgent(nd, cfg)
		ag.Start(float64(i) + 1)
	}
	n.RunUntil(200)

	res := Traceroute(src, dst, 10)
	if !res.Reached || len(res.Hops) != 2 {
		t.Fatalf("pre-failure path = %+v, want via top (2 hops)", res.Hops)
	}
	if res.Hops[0].Node != top.ID {
		t.Fatalf("pre-failure first hop = %v, want top", res.Hops[0].Node)
	}

	lTop.SetDown(true)
	n.RunUntil(n.Sim.Now() + 400) // timeout + reconvergence
	res2 := Traceroute(src, dst, 10)
	if !res2.Reached {
		t.Fatal("post-failure probe did not arrive")
	}
	if len(res2.Hops) != 3 || res2.Hops[0].Node != b1.ID {
		t.Fatalf("post-failure path = %+v, want src→b1→b2→dst", res2.Hops)
	}
}
