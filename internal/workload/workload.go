// Package workload provides the traffic generators and recorders behind
// the paper's measurements: a pinger replicating the May-1992 Berkeley→MIT
// experiment (1000 echoes at 1.01-second intervals, Figure 1) and a
// constant-bit-rate audio stream replicating the November-1992 audiocast
// whose 30-second periodic outages appear in Figure 3.
package workload

import (
	"math"

	"routesync/internal/netsim"
	"routesync/internal/stats"
)

// PingConfig parameterizes a ping run.
type PingConfig struct {
	// Interval between echo requests in seconds (paper: 1.01 — chosen
	// off 1.00 so the pings themselves do not synchronize with
	// whole-second periodic processes).
	Interval float64
	// Count of echo requests to send (paper: 1000).
	Count int
	// Timeout after which an unanswered echo counts as lost; zero means
	// Interval.
	Timeout float64
	// Size of each echo packet in bytes; zero means 64.
	Size int
}

// PingResult holds a completed run. RTTs[i] is the round-trip time of
// ping i in seconds, or NaN if it was lost.
type PingResult struct {
	Sent int
	RTTs []float64
}

// Lost returns the number of lost pings.
func (r PingResult) Lost() int {
	lost := 0
	for _, v := range r.RTTs {
		if math.IsNaN(v) {
			lost++
		}
	}
	return lost
}

// LossRate returns the fraction of pings lost.
func (r PingResult) LossRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Lost()) / float64(r.Sent)
}

// RTTQuantile returns the q-quantile of the successful RTTs, or NaN when
// every ping was lost.
func (r PingResult) RTTQuantile(q float64) float64 {
	var ok []float64
	for _, v := range r.RTTs {
		if !math.IsNaN(v) {
			ok = append(ok, v)
		}
	}
	return stats.Quantile(ok, q)
}

// RTTsFilled returns the RTT series with losses replaced by v — the
// paper's Figure 2 assigns dropped packets a round-trip time of two
// seconds before computing the autocorrelation.
func (r PingResult) RTTsFilled(v float64) []float64 {
	out := make([]float64, len(r.RTTs))
	for i, x := range r.RTTs {
		if math.IsNaN(x) {
			out[i] = v
		} else {
			out[i] = x
		}
	}
	return out
}

// InstallEchoResponder makes node answer echo requests: each request is
// turned around as an echo reply to its source, preserving Seq.
func InstallEchoResponder(node *netsim.Node) {
	if node.OnDeliver == nil {
		node.OnDeliver = make(map[netsim.Kind]func(*netsim.Packet))
	}
	net := node.Net()
	node.OnDeliver[netsim.KindEchoRequest] = func(pkt *netsim.Packet) {
		reply := net.NewPacket(netsim.KindEchoReply, node.ID, pkt.Src, pkt.Size)
		reply.Seq = pkt.Seq
		net.Inject(reply)
	}
}

// Pinger runs one ping experiment between two nodes.
type Pinger struct {
	net  *netsim.Network
	src  *netsim.Node
	dst  *netsim.Node
	cfg  PingConfig
	sent []float64 // send time per seq
	rtt  []float64

	// Rollback shadows for optimistic partitioned runs: both send times
	// and reply RTTs are recorded by events at src's node, so the pinger
	// checkpoints with src's logical process.
	ckptSent []float64
	ckptRtt  []float64
}

// SaveCheckpoint implements netsim.Checkpointable.
func (p *Pinger) SaveCheckpoint() {
	p.ckptSent = append(p.ckptSent[:0], p.sent...)
	p.ckptRtt = append(p.ckptRtt[:0], p.rtt...)
}

// RestoreCheckpoint implements netsim.Checkpointable.
func (p *Pinger) RestoreCheckpoint() {
	copy(p.sent, p.ckptSent)
	copy(p.rtt, p.ckptRtt)
}

// NewPinger wires a pinger from src to dst: the echo responder is
// installed on dst and the reply handler on src. It panics on invalid
// config.
func NewPinger(src, dst *netsim.Node, cfg PingConfig) *Pinger {
	if cfg.Interval <= 0 || cfg.Count <= 0 {
		panic("workload: ping interval and count must be positive")
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = cfg.Interval
	}
	if cfg.Size == 0 {
		cfg.Size = 64
	}
	p := &Pinger{
		net:  src.Net(),
		src:  src,
		dst:  dst,
		cfg:  cfg,
		sent: make([]float64, cfg.Count),
		rtt:  make([]float64, cfg.Count),
	}
	for i := range p.rtt {
		p.rtt[i] = math.NaN()
	}
	InstallEchoResponder(dst)
	if src.OnDeliver == nil {
		src.OnDeliver = make(map[netsim.Kind]func(*netsim.Packet))
	}
	src.OnDeliver[netsim.KindEchoReply] = func(pkt *netsim.Packet) {
		seq := int(pkt.Seq)
		if seq < 0 || seq >= cfg.Count {
			return
		}
		t := p.src.Now() - p.sent[seq]
		if t <= cfg.Timeout && math.IsNaN(p.rtt[seq]) {
			p.rtt[seq] = t
		}
	}
	src.Net().RegisterCheckpoint(src, p)
	return p
}

// Start schedules the whole run beginning at the given absolute time.
func (p *Pinger) Start(at float64) {
	for i := 0; i < p.cfg.Count; i++ {
		i := i
		when := at + float64(i)*p.cfg.Interval
		p.src.Schedule(when, "ping", func() {
			p.sent[i] = p.src.Now()
			pkt := p.net.NewPacket(netsim.KindEchoRequest, p.src.ID, p.dst.ID, p.cfg.Size)
			pkt.Seq = int64(i)
			p.net.Inject(pkt)
		})
	}
}

// Result returns the run's outcome; call it after the simulation has run
// past the last ping plus its timeout.
func (p *Pinger) Result() PingResult {
	return PingResult{Sent: p.cfg.Count, RTTs: append([]float64(nil), p.rtt...)}
}
