package workload

import (
	"math"
	"testing"

	"routesync/internal/netsim"
)

func pingPath(seed int64, cpu *netsim.CPUConfig) (*netsim.Network, []*netsim.Node) {
	n := netsim.NewNetwork(seed)
	nodes := n.BuildChain(
		[]string{"src", "r", "dst"},
		[]*netsim.CPUConfig{nil, cpu, nil},
		netsim.LinkConfig{Delay: 0.01},
	)
	return n, nodes
}

func TestPingAllAnswered(t *testing.T) {
	n, nodes := pingPath(1, nil)
	p := NewPinger(nodes[0], nodes[2], PingConfig{Interval: 1.01, Count: 50})
	p.Start(0)
	n.RunUntil(100)
	res := p.Result()
	if res.Sent != 50 || res.Lost() != 0 {
		t.Fatalf("sent %d lost %d", res.Sent, res.Lost())
	}
	for i, rtt := range res.RTTs {
		if math.Abs(rtt-0.04) > 1e-9 { // 2 hops × 10 ms × 2 directions
			t.Fatalf("ping %d rtt = %v, want 0.04", i, rtt)
		}
	}
	if res.LossRate() != 0 {
		t.Fatalf("loss rate = %v", res.LossRate())
	}
}

func TestPingLossDuringCPUBusy(t *testing.T) {
	n, nodes := pingPath(2, &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
	p := NewPinger(nodes[0], nodes[2], PingConfig{Interval: 1.0, Count: 20})
	p.Start(0.5) // pings at 0.5, 1.5, 2.5, ...
	// Block the router 4.9..8.1: pings at 5.5, 6.5, 7.5 die.
	n.Sim.Schedule(4.9, "occupy", func() { nodes[1].CPU.Occupy(3.2) })
	n.RunUntil(60)
	res := p.Result()
	if res.Lost() != 3 {
		t.Fatalf("lost %d pings, want 3 (RTTs %v)", res.Lost(), res.RTTs)
	}
	for i, rtt := range res.RTTs {
		lost := math.IsNaN(rtt)
		wantLost := i == 5 || i == 6 || i == 7
		if lost != wantLost {
			t.Fatalf("ping %d lost=%v, want %v", i, lost, wantLost)
		}
	}
}

func TestPingRTTsFilled(t *testing.T) {
	r := PingResult{Sent: 3, RTTs: []float64{0.1, math.NaN(), 0.2}}
	got := r.RTTsFilled(2.0)
	if got[0] != 0.1 || got[1] != 2.0 || got[2] != 0.2 {
		t.Fatalf("filled = %v", got)
	}
	if r.Lost() != 1 || math.Abs(r.LossRate()-1.0/3) > 1e-12 {
		t.Fatalf("lost %d rate %v", r.Lost(), r.LossRate())
	}
}

func TestPingLateReplyCountsAsLost(t *testing.T) {
	// A reply that arrives after Timeout must not be recorded.
	n := netsim.NewNetwork(3)
	nodes := n.BuildChain([]string{"src", "dst"}, nil, netsim.LinkConfig{Delay: 0.8})
	p := NewPinger(nodes[0], nodes[1], PingConfig{Interval: 1.0, Count: 3, Timeout: 1.0})
	p.Start(0)
	n.RunUntil(30)
	res := p.Result()
	// RTT is 1.6 s > timeout 1.0 s.
	if res.Lost() != 3 {
		t.Fatalf("late replies recorded: %v", res.RTTs)
	}
}

func TestPingConfigValidation(t *testing.T) {
	n := netsim.NewNetwork(4)
	nodes := n.BuildChain([]string{"a", "b"}, nil, netsim.LinkConfig{})
	for _, cfg := range []PingConfig{
		{Interval: 0, Count: 5},
		{Interval: 1, Count: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid ping config did not panic")
				}
			}()
			NewPinger(nodes[0], nodes[1], cfg)
		}()
	}
}

func TestAudioCleanDelivery(t *testing.T) {
	n, nodes := pingPath(5, nil)
	s := NewAudioStream(nodes[0], nodes[2], AudioConfig{Rate: 50, Duration: 10})
	s.Start(0)
	n.RunUntil(20)
	res := s.Result()
	if res.Sent() != 500 || res.Lost() != 0 {
		t.Fatalf("sent %d lost %d", res.Sent(), res.Lost())
	}
	if len(res.Outages()) != 0 {
		t.Fatalf("outages on a clean path: %v", res.Outages())
	}
}

func TestAudioOutageExtraction(t *testing.T) {
	res := AudioResult{
		Received: []bool{true, false, false, true, false, true, true, false},
		Gap:      0.02,
		Start:    100,
	}
	outs := res.Outages()
	if len(outs) != 3 {
		t.Fatalf("outages = %+v", outs)
	}
	if outs[0].Lost != 2 || math.Abs(outs[0].Start-100.02) > 1e-9 || math.Abs(outs[0].Duration-0.04) > 1e-9 {
		t.Fatalf("first outage = %+v", outs[0])
	}
	if outs[1].Lost != 1 || outs[2].Lost != 1 {
		t.Fatalf("outages = %+v", outs)
	}
	// trailing outage is flushed
	if math.Abs(outs[2].Start-100.14) > 1e-9 {
		t.Fatalf("trailing outage = %+v", outs[2])
	}
}

func TestAudioLossDuringCPUBusy(t *testing.T) {
	n, nodes := pingPath(6, &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
	s := NewAudioStream(nodes[0], nodes[2], AudioConfig{Rate: 50, Duration: 30})
	s.Start(0)
	// Two busy periods: 10.0–11.5 and 20.0–21.5.
	n.Sim.Schedule(10, "occupy1", func() { nodes[1].CPU.Occupy(1.5) })
	n.Sim.Schedule(20, "occupy2", func() { nodes[1].CPU.Occupy(1.5) })
	n.RunUntil(60)
	res := s.Result()
	outs := res.Outages()
	if len(outs) != 2 {
		t.Fatalf("outages = %+v, want 2", outs)
	}
	for _, o := range outs {
		if math.Abs(o.Duration-1.5) > 0.1 {
			t.Fatalf("outage duration = %v, want ~1.5", o.Duration)
		}
	}
	if r := res.LossRateIn(10, 11.5); r < 0.95 {
		t.Fatalf("loss rate in busy window = %v, want ~1", r)
	}
	if r := res.LossRateIn(0, 10); r != 0 {
		t.Fatalf("loss rate before busy window = %v, want 0", r)
	}
}

func TestAudioConfigValidation(t *testing.T) {
	n := netsim.NewNetwork(7)
	nodes := n.BuildChain([]string{"a", "b"}, nil, netsim.LinkConfig{})
	for _, cfg := range []AudioConfig{
		{Rate: 0, Duration: 5},
		{Rate: 50, Duration: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid audio config did not panic")
				}
			}()
			NewAudioStream(nodes[0], nodes[1], cfg)
		}()
	}
}

func TestAudioLossRateInEmptyWindow(t *testing.T) {
	res := AudioResult{Received: []bool{true, false}, Gap: 0.02, Start: 0}
	if r := res.LossRateIn(100, 200); r != 0 {
		t.Fatalf("empty window rate = %v", r)
	}
}

func TestPingRTTQuantile(t *testing.T) {
	r := PingResult{Sent: 5, RTTs: []float64{0.1, math.NaN(), 0.3, 0.2, math.NaN()}}
	if got := r.RTTQuantile(0.5); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("median = %v, want 0.2", got)
	}
	if got := r.RTTQuantile(0); got != 0.1 {
		t.Fatalf("min = %v", got)
	}
	allLost := PingResult{Sent: 2, RTTs: []float64{math.NaN(), math.NaN()}}
	if !math.IsNaN(allLost.RTTQuantile(0.5)) {
		t.Fatal("quantile of all-lost run should be NaN")
	}
}
