// Package routesync is a from-scratch reproduction of "The
// Synchronization of Periodic Routing Messages" (Sally Floyd and Van
// Jacobson, SIGCOMM 1993): a library for studying — and engineering away —
// the inadvertent synchronization of periodic processes in networks.
//
// The paper's result, reproduced by this library's models and
// experiments, is that a population of routers sending "independent"
// periodic routing updates is weakly coupled through message processing,
// and that coupling drives the system to full synchronization. The
// transition is an abrupt phase transition in both the random timer
// component Tr and the router count N, and preventing it requires a
// surprisingly large amount of injected randomness (Tr of at least
// ~10× the per-message processing cost; Tr = Tp/2 is always safe).
//
// # Quick start
//
//	params := routesync.PaperParams(0.1, 1) // N=20, Tp=121s, Tc=0.11s, Tr=0.1s
//	rep, _ := routesync.Simulate(params, routesync.SimOptions{Horizon: 3e5})
//	if rep.Synchronized {
//	    fmt.Printf("synchronized after %.0f rounds\n", rep.SyncRounds)
//	}
//	plan, _ := routesync.PlanJitter(20, 90, 0.3) // the paper's PARC example
//	fmt.Printf("add at least %.1fs of jitter; %.1fs is always safe\n",
//	    plan.MinTr, plan.SafeTr)
//
// # Architecture
//
// The public API wraps internal packages, each usable on its own inside
// this module:
//
//   - internal/periodic — the Periodic Messages model (paper §3–4)
//   - internal/markov — the Markov chain model (paper §5)
//   - internal/jitter — timer jitter policies and the §5.3/§6 guidance
//   - internal/netsim — a packet-level network simulator
//   - internal/routing — distance-vector protocols (RIP/IGRP/DECnet/...)
//   - internal/linkstate — a link-state protocol with the same coupling
//   - internal/workload — ping, CBR audio, Poisson traffic, traceroute
//   - internal/scenarios — the paper's §1 catalogue (TCP sync, convoys,
//     external clocks)
//   - internal/experiments — one driver per paper figure
//
// See DESIGN.md for the full inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every figure.
package routesync

import "routesync/internal/core"

// Params describes a network of periodic routing processes: N routers
// sending updates every Tp ± Tr seconds, spending Tc seconds processing
// each routing message. See core.Params.
type Params = core.Params

// SimOptions tunes Simulate. See core.SimOptions.
type SimOptions = core.SimOptions

// SimReport is the outcome of one simulation run. See core.SimReport.
type SimReport = core.SimReport

// Analysis is the Markov chain prediction. See core.Analysis.
type Analysis = core.Analysis

// Regime classifies parameters into the paper's randomization regions.
type Regime = core.Regime

// Randomization regimes (paper Fig 12).
const (
	RegimeLow      = core.RegimeLow
	RegimeModerate = core.RegimeModerate
	RegimeHigh     = core.RegimeHigh
)

// Comparison pits analysis against simulation. See core.Comparison.
type Comparison = core.Comparison

// JitterPlan is the actionable jitter guidance. See core.JitterPlan.
type JitterPlan = core.JitterPlan

// ErrBadParams reports invalid parameters.
var ErrBadParams = core.ErrBadParams

// PaperParams returns the paper's simulation parameters (N=20, Tp=121 s,
// Tc=0.11 s) with the given random component and seed.
func PaperParams(tr float64, seed int64) Params { return core.PaperParams(tr, seed) }

// Simulate runs the Periodic Messages model once: from an unsynchronized
// start it reports if/when the system fully synchronized; from a
// synchronized start (SimOptions.StartSynchronized), if/when it broke up.
func Simulate(p Params, opt SimOptions) (*SimReport, error) { return core.Simulate(p, opt) }

// Analyze evaluates the paper's Markov chain model: expected times to
// synchronize and desynchronize, the long-run fraction of time
// unsynchronized, and the equilibrium cluster-size distribution.
func Analyze(p Params) (*Analysis, error) { return core.Analyze(p) }

// Compare runs simulation replications beside the analysis, the
// validation of the paper's Figures 10–11.
func Compare(p Params, replications int, horizon float64) (*Comparison, error) {
	return core.Compare(p, replications, horizon)
}

// PlanJitter evaluates the paper's jitter guidance for a deployment: how
// much randomness to add to a tp-second routing timer when each routing
// message costs tc seconds of CPU across n routers.
func PlanJitter(n int, tp, tc float64) (*JitterPlan, error) { return core.PlanJitter(n, tp, tc) }

// CriticalJitter returns the phase-transition threshold Tr for a
// deployment (see core.CriticalJitter).
func CriticalJitter(n int, tp, tc float64) (float64, bool, error) {
	return core.CriticalJitter(n, tp, tc)
}

// EnsembleSummary reports a replicated simulation study.
type EnsembleSummary = core.EnsembleSummary

// SimulateEnsemble runs independent replications in parallel and
// summarizes the time to synchronization or break-up.
func SimulateEnsemble(p Params, replications int, horizon float64, startSynchronized bool) (*EnsembleSummary, error) {
	return core.SimulateEnsemble(p, replications, horizon, startSynchronized)
}
