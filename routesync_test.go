package routesync_test

import (
	"fmt"
	"testing"

	"routesync"
)

// TestPublicAPIRoundTrip exercises the exported façade end to end the way
// the README quick start does.
func TestPublicAPIRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	params := routesync.PaperParams(0.1, 1)
	rep, err := routesync.Simulate(params, routesync.SimOptions{Horizon: 3e5})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Synchronized {
		t.Fatal("quick-start scenario did not synchronize")
	}

	a, err := routesync.Analyze(params)
	if err != nil {
		t.Fatal(err)
	}
	if a.Regime != routesync.RegimeLow {
		t.Fatalf("regime = %s, want low for Tr=0.1", a.Regime)
	}

	plan, err := routesync.PlanJitter(20, 90, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MinTr <= 0 || plan.SafeTr != 45 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestPublicErrors(t *testing.T) {
	if _, err := routesync.Simulate(routesync.Params{}, routesync.SimOptions{}); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := routesync.Analyze(routesync.Params{N: 1, Tp: 10, Tc: 0.1}); err == nil {
		t.Fatal("analysis with one router accepted")
	}
}

func ExamplePlanJitter() {
	// The paper's Xerox PARC example: 90-second IGRP timers, ~300 ms to
	// process each update. How much jitter is needed?
	plan, err := routesync.PlanJitter(20, 90, 0.3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("minimum jitter: %.0f s, always-safe jitter: %.0f s\n", plan.MinTr, plan.SafeTr)
	// Output: minimum jitter: 3 s, always-safe jitter: 45 s
}
